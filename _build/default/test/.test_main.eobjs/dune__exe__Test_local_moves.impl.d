test/test_local_moves.ml: Alcotest Array Concept Dynamics Gen Graph Greedy_eq Helpers List Local_moves Move Pairwise Random
