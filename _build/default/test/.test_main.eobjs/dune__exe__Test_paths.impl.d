test/test_paths.ml: Alcotest Array Gen Graph Helpers List Paths
