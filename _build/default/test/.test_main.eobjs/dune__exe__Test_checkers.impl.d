test/test_checkers.ml: Add_eq Array Concept Enumerate Gen Graph Greedy_eq Helpers List Move Pairwise Paths Printf Random Remove_eq String Strong_eq Swap_eq Verdict
