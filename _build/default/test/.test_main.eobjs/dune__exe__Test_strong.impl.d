test/test_strong.ml: Alcotest Concept Counterexamples Cycle Enumerate Gen Greedy_eq Helpers List Move Printf Random Strong_eq Tree Verdict
