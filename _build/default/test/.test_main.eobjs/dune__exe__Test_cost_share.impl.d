test/test_cost_share.ml: Alcotest Array Collaborative_eq Concept Cost Cost_share Enumerate Gen Graph Helpers List Pairwise Printf Random
