test/test_unilateral.ml: Add_eq Alcotest Concept Cost Counterexamples Enumerate Gen Graph Helpers List Move Printf Remove_eq Strategy Unilateral
