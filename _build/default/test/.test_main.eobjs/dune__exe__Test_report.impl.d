test/test_report.ml: Alcotest Float Helpers List Relations Report String
