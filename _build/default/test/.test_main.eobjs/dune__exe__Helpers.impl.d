test/helpers.ml: Alcotest Concept Graph Move Random Verdict
