test/test_witness_search.ml: Add_eq Alcotest Concept Counterexamples Gen Graph Helpers Paths Remove_eq Witness_search
