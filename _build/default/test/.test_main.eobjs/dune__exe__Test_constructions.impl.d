test/test_constructions.ml: Array Bounds Concept Cost Cycle Float Gen Graph Helpers List Paths Printf Stretched Tree
