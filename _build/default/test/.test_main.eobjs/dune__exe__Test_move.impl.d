test/test_move.ml: Alcotest Gen Graph Helpers List Move String Verdict
