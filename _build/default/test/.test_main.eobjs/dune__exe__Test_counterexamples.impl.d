test/test_counterexamples.ml: Alcotest Array Concept Counterexamples Graph Helpers List Move Paths Printf Unilateral
