test/test_alpha_profile.ml: Alpha_profile Concept Counterexamples Cycle Float Format Gen Helpers List String
