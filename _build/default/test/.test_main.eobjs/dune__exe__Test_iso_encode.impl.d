test/test_iso_encode.ml: Alcotest Array Char Encode Gen Graph Helpers Iso List Random String Tree
