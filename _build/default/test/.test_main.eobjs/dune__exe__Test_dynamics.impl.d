test/test_dynamics.ml: Alcotest Concept Cost Counterexamples Dynamics Gen Helpers List Move String Strong_eq Verdict
