test/test_analysis_extras.ml: Add_eq Bounds Cost Counterexamples Dot Enumerate Fit Float Gen Graph Helpers List Move Printf String Strong_eq Structure Swap_eq Unilateral_poa Verdict Viz Welfare
