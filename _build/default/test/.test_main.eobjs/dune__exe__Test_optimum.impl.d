test/test_optimum.ml: Bounds Concept Cost Enumerate Gen Graph Helpers List Optimum Paths Printf Remove_eq
