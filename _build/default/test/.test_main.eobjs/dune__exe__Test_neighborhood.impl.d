test/test_neighborhood.ml: Add_eq Alcotest Concept Counterexamples Enumerate Gen Graph Greedy_eq Helpers List Move Neighborhood_eq Remove_eq Swap_eq Verdict
