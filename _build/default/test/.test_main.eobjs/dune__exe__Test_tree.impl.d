test/test_tree.ml: Alcotest Array Gen Graph Helpers List Paths Printf Random Tree
