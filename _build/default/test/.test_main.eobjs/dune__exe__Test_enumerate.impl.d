test/test_enumerate.ml: Enumerate Graph Helpers Iso List Paths Printf String Tree
