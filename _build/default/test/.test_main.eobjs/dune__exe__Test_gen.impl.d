test/test_gen.ml: Alcotest Gen Graph Helpers Paths Random Tree
