test/test_poa_bounds.ml: Alcotest Array Bounds Concept Cost Enumerate Gen Graph Helpers List Paths Poa Remove_eq Tree Verdict
