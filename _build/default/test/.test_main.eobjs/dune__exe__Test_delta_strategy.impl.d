test/test_delta_strategy.ml: Alcotest Delta Float Gen Graph Helpers List Paths Random Strategy
