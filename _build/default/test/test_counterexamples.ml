open Helpers

let verify_case (c : Counterexamples.case) =
  List.iter
    (fun concept ->
      check_stable (c.Counterexamples.name ^ " " ^ Concept.name concept) concept
        c.Counterexamples.alpha c.Counterexamples.graph)
    c.Counterexamples.stable;
  List.iter
    (fun (concept, m) ->
      check_true
        (Printf.sprintf "%s: %s witness improving" c.Counterexamples.name
           (Concept.name concept))
        (Move.is_improving ~alpha:c.Counterexamples.alpha c.Counterexamples.graph m))
    c.Counterexamples.unstable

let suite =
  [
    tc "figure 6 shape and distance costs match the proof" (fun () ->
        let g = Counterexamples.figure6.Counterexamples.graph in
        check_int "n" 10 (Graph.n g);
        check_int "m" 10 (Graph.num_edges g);
        (* dist(a) = 19, dist(b) = 27, dist(c) = 19 *)
        check_int "dist a1" 19 (Paths.total_dist g 0).Paths.sum;
        check_int "dist b1" 27 (Paths.total_dist g 4).Paths.sum;
        check_int "dist c1" 19 (Paths.total_dist g 8).Paths.sum;
        (* a sees two vertices at distance 3 and one at distance 4 *)
        check_int "a: dist-3 count" 2 (List.length (Paths.neigh_exactly g 0 3));
        check_int "a: dist-4 count" 1 (List.length (Paths.neigh_exactly g 0 4));
        (* c sees three vertices at distance 3 *)
        check_int "c: dist-3 count" 3 (List.length (Paths.neigh_exactly g 8 3)));
    tc "figure 6 coalition gains match the proof (19 -> 17)" (fun () ->
        let c = Counterexamples.figure6 in
        let m = List.assoc (Concept.KBSE 2) c.Counterexamples.unstable in
        let g' = Move.apply c.Counterexamples.graph m in
        check_int "a1 after" 17 (Paths.total_dist g' 0).Paths.sum;
        check_int "a3 after" 17 (Paths.total_dist g' 2).Paths.sum);
    slow "figure 6 full verification" (fun () -> verify_case Counterexamples.figure6);
    slow "figure 5 full verification" (fun () -> verify_case Counterexamples.figure5);
    tc "figure 5 gain arithmetic matches the paper (104 / 105 / 2)" (fun () ->
        let c = Counterexamples.figure5 in
        let g = c.Counterexamples.graph in
        let a = 0 in
        (* identify b1 and c1 from the stored move *)
        match List.assoc Concept.BNE c.Counterexamples.unstable with
        | Move.Neighborhood { drop = [ b1; b2 ]; add = [ c1; c2 ]; _ } ->
            (* single swap a: b1 -> c1 *)
            let single = Graph.add_edge (Graph.remove_edge g a b1) a c1 in
            let gain_c1 =
              (Paths.total_dist g c1).Paths.sum - (Paths.total_dist single c1).Paths.sum
            in
            check_int "single swap partner gain" 104 gain_c1;
            let double =
              Graph.apply g
                ~remove:[ (a, b1); (a, b2) ]
                ~add:[ (a, c1); (a, c2) ]
            in
            let gain_a =
              (Paths.total_dist g a).Paths.sum - (Paths.total_dist double a).Paths.sum
            in
            check_int "a's double swap gain" 2 gain_a;
            let gain_c1d =
              (Paths.total_dist g c1).Paths.sum - (Paths.total_dist double c1).Paths.sum
            in
            check_int "double swap partner gain" 105 gain_c1d;
            let gain_c2d =
              (Paths.total_dist g c2).Paths.sum - (Paths.total_dist double c2).Paths.sum
            in
            check_int "second partner gain" 105 gain_c2d
        | _ -> Alcotest.fail "unexpected move shape");
    tc "figure 7 distance arithmetic matches the proof" (fun () ->
        let c = Counterexamples.figure7 ~k:2 in
        let g = c.Counterexamples.graph in
        let i = 40 in
        (* dist of a c-vertex before: 4 + 12(i-1); after the big move:
           3 + 8(i-1) *)
        check_int "c before" (4 + (12 * (i - 1))) (Paths.total_dist g 2).Paths.sum;
        let m = List.assoc Concept.BNE c.Counterexamples.unstable in
        let g' = Move.apply g m in
        check_int "c after" (3 + (8 * (i - 1))) (Paths.total_dist g' 2).Paths.sum;
        check_int "a before" (6 * i) (Paths.total_dist g 0).Paths.sum;
        check_int "a after" (5 * i) (Paths.total_dist g' 0).Paths.sum);
    slow "figure 7 (k=2) full verification" (fun () ->
        verify_case (Counterexamples.figure7 ~k:2));
    tc "figure 7 parameter guard" (fun () ->
        check_raises_invalid "k=1" (fun () -> ignore (Counterexamples.figure7 ~k:1)));
    tc "figure 8 equivalent" (fun () ->
        verify_case Counterexamples.figure8_equivalent;
        match Unilateral.is_add_eq ~alpha:5. Counterexamples.figure8_equivalent.Counterexamples.graph with
        | Ok () -> Alcotest.fail "expected a unilateral AE violation"
        | Error _ -> ());
    tc "vertex name table matches figure 6 size" (fun () ->
        check_int "names" 10 (Array.length Counterexamples.figure6_vertex_names));
  ]
