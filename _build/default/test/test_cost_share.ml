open Helpers

let suite =
  [
    tc "equal split funds every edge" (fun () ->
        let s = Cost_share.equal_split ~alpha:4. (Gen.cycle 5) in
        List.iter
          (fun e ->
            check_float "total" 4. (Cost_share.edge_total s e);
            let u, v = e in
            check_float "u half" 2. (Cost_share.share s e u);
            check_float "v half" 2. (Cost_share.share s e v);
            check_float "stranger none" 0.
              (Cost_share.share s e ((u + 2) mod 5)))
          (Graph.edges (Gen.cycle 5)));
    tc "make validates funding" (fun () ->
        let g = Gen.path 3 in
        check_raises_invalid "underfunded" (fun () ->
            ignore (Cost_share.make ~alpha:4. g [ ((0, 1), [ (0, 1.) ]); ((1, 2), [ (1, 4.) ]) ]));
        check_raises_invalid "missing edge" (fun () ->
            ignore (Cost_share.make ~alpha:4. g [ ((0, 1), [ (0, 4.) ]) ]));
        check_raises_invalid "funding a non-edge" (fun () ->
            ignore
              (Cost_share.make ~alpha:4. g
                 [ ((0, 1), [ (0, 4.) ]); ((1, 2), [ (1, 4.) ]); ((0, 2), [ (0, 4.) ]) ]));
        check_raises_invalid "negative share" (fun () ->
            ignore
              (Cost_share.make ~alpha:4. g
                 [ ((0, 1), [ (0, 5.); (1, -1.) ]); ((1, 2), [ (1, 4.) ]) ])));
    tc "third parties may fund" (fun () ->
        let g = Gen.path 3 in
        let s =
          Cost_share.make ~alpha:4. g
            [ ((0, 1), [ (2, 4.) ]); ((1, 2), [ (0, 2.); (1, 2.) ]) ]
        in
        check_float "agent 2 pays for a distant edge" 4. (Cost_share.agent_buy s 2);
        check_float "agent 1 pays" 2. (Cost_share.agent_buy s 1));
    tc "agent cost combines shares and distances" (fun () ->
        let s = Cost_share.equal_split ~alpha:4. (Gen.star 5) in
        let center = Cost_share.agent_cost s 0 in
        check_float "center buy" 8. center.Cost.buy;
        check_int "center dist" 4 center.Cost.dist);
    tc "social cost counts each edge once" (fun () ->
        let g = Gen.star 5 and alpha = 4. in
        let s = Cost_share.equal_split ~alpha g in
        (* 4 edges * alpha + total distances *)
        let dist = (Cost.social_cost ~alpha g).Cost.social_dist in
        check_float "social" ((4. *. alpha) +. float_of_int dist) (Cost_share.social_cost s));
    tc "rho of the star is 1 at alpha >= 2" (fun () ->
        check_float "star" 1. (Cost_share.rho (Cost_share.equal_split ~alpha:3. (Gen.star 7))));
    tc "fund_edge and withdraw round-trip" (fun () ->
        let s = Cost_share.equal_split ~alpha:4. (Gen.path 4) in
        let s' = Cost_share.fund_edge s (0, 3) [ (0, 3.); (3, 1.) ] in
        check_true "edge added" (Graph.has_edge (Cost_share.graph s') 0 3);
        check_float "share recorded" 3. (Cost_share.share s' (0, 3) 0);
        let s'' = Cost_share.withdraw s' (0, 3) [ 0 ] in
        check_false "edge gone below alpha" (Graph.has_edge (Cost_share.graph s'') 0 3);
        let s3 = Cost_share.withdraw s' (0, 3) [] in
        check_true "no-op keeps edge" (Graph.has_edge (Cost_share.graph s3) 0 3));
    tc "CE: a long path is destabilised by third-party funding" (fun () ->
        (* On P6 at alpha = 8, no *pair* gains enough (PS holds) but the
           crowd jointly gains more than alpha from the chord 1-4 *)
        let g = Gen.path 6 and alpha = 8. in
        check_stable "PS holds" Concept.PS alpha g;
        let s = Cost_share.equal_split ~alpha g in
        match Collaborative_eq.check s with
        | Ok () -> Alcotest.fail "expected a CE violation"
        | Error w ->
            let s' = Collaborative_eq.apply s w in
            List.iter
              (fun m ->
                check_true "mover strictly improves"
                  (Cost.strictly_less (Cost_share.agent_cost s' m) (Cost_share.agent_cost s m)))
              (Collaborative_eq.movers w));
    tc "CE: the star is collaboratively stable" (fun () ->
        List.iter
          (fun alpha ->
            check_true
              (Printf.sprintf "alpha=%g" alpha)
              (Collaborative_eq.is_stable (Cost_share.equal_split ~alpha (Gen.star 8))))
          [ 2.; 5.; 50. ]);
    tc "CE: defunding fires when a contributor overpays" (fun () ->
        (* C4 funded entirely by agent 0 for the edge 2-3 she does not
           care about: she saves alpha and loses little distance *)
        let g = Gen.cycle 4 in
        let s =
          Cost_share.make ~alpha:4. g
            [
              ((0, 1), [ (0, 2.); (1, 2.) ]); ((1, 2), [ (1, 2.); (2, 2.) ]);
              ((2, 3), [ (0, 4.) ]); ((0, 3), [ (0, 2.); (3, 2.) ]);
            ]
        in
        match Collaborative_eq.check s with
        | Error (Collaborative_eq.Defund ((2, 3), [ 0 ])) -> ()
        | Error w ->
            (* another violation may fire first; it must still verify *)
            let s' = Collaborative_eq.apply s w in
            List.iter
              (fun m ->
                check_true "mover improves"
                  (Cost.strictly_less (Cost_share.agent_cost s' m) (Cost_share.agent_cost s m)))
              (Collaborative_eq.movers w)
        | Ok () -> Alcotest.fail "expected a violation");
    tc "CE witnesses always verify on random trees" (fun () ->
        let r = rng 101 in
        for _ = 1 to 25 do
          let n = 4 + Random.State.int r 6 in
          let alpha = [| 2.; 4.; 8. |].(Random.State.int r 3) in
          let s = Cost_share.equal_split ~alpha (Gen.random_tree r n) in
          match Collaborative_eq.check s with
          | Ok () -> ()
          | Error w ->
              let s' = Collaborative_eq.apply s w in
              List.iter
                (fun m ->
                  check_true "improves"
                    (Cost.strictly_less (Cost_share.agent_cost s' m)
                       (Cost_share.agent_cost s m)))
                (Collaborative_eq.movers w)
        done);
    tc "CE refines PS on enumerated trees" (fun () ->
        (* every equal-split CE state has a PS-stable graph: a mutually
           improving pair addition in the BNCG sense is in particular a
           joint funding, and single-edge removals are single-agent
           defunds...  the converse fails (the P6 case above), so count
           both directions *)
        let ce_not_ps = ref 0 and ps_not_ce = ref 0 in
        List.iter
          (fun g ->
            List.iter
              (fun alpha ->
                let ps = Pairwise.is_stable ~alpha g in
                let ce = Collaborative_eq.is_stable (Cost_share.equal_split ~alpha g) in
                if ce && not ps then incr ce_not_ps;
                if ps && not ce then incr ps_not_ce)
              [ 2.; 4.; 8. ])
          (Enumerate.free_trees 7);
        check_true "CE kills some PS states" (!ps_not_ce > 0));
  ]
