open Helpers

let suite =
  [
    tc "bfs on a path" (fun () ->
        Alcotest.(check (array int)) "dists" [| 0; 1; 2; 3 |] (Paths.bfs (Gen.path 4) 0));
    tc "bfs from the middle" (fun () ->
        Alcotest.(check (array int)) "dists" [| 2; 1; 0; 1; 2 |] (Paths.bfs (Gen.path 5) 2));
    tc "bfs marks unreachable with -1" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1) ] in
        Alcotest.(check (array int)) "dists" [| 0; 1; -1; -1 |] (Paths.bfs g 0));
    tc "dist option" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1) ] in
        Alcotest.(check (option int)) "reachable" (Some 1) (Paths.dist g 0 1);
        Alcotest.(check (option int)) "unreachable" None (Paths.dist g 0 3));
    tc "total_dist on a star" (fun () ->
        let g = Gen.star 6 in
        check_int "center" 5 (Paths.total_dist g 0).Paths.sum;
        check_int "leaf" (1 + (4 * 2)) (Paths.total_dist g 1).Paths.sum);
    tc "total_dist counts unreachable" (fun () ->
        let g = Graph.of_edges 5 [ (0, 1); (2, 3) ] in
        let t = Paths.total_dist g 0 in
        check_int "unreachable" 3 t.Paths.unreachable;
        check_int "sum" 1 t.Paths.sum);
    tc "total_dist_to restricts targets" (fun () ->
        let g = Gen.path 5 in
        let t = Paths.total_dist_to g 0 [ 2; 4 ] in
        check_int "sum" 6 t.Paths.sum);
    tc "apsp symmetric on cycle" (fun () ->
        let d = Paths.apsp (Gen.cycle 6) in
        for u = 0 to 5 do
          for v = 0 to 5 do
            check_int "sym" d.(u).(v) d.(v).(u)
          done
        done;
        check_int "antipodal" 3 d.(0).(3));
    tc "eccentricity" (fun () ->
        Alcotest.(check (option int)) "path end" (Some 4) (Paths.eccentricity (Gen.path 5) 0);
        Alcotest.(check (option int)) "path mid" (Some 2) (Paths.eccentricity (Gen.path 5) 2);
        Alcotest.(check (option int)) "disconnected" None
          (Paths.eccentricity (Graph.create 2) 0));
    tc "diameter" (fun () ->
        Alcotest.(check (option int)) "path" (Some 4) (Paths.diameter (Gen.path 5));
        Alcotest.(check (option int)) "cycle" (Some 3) (Paths.diameter (Gen.cycle 7));
        Alcotest.(check (option int)) "clique" (Some 1) (Paths.diameter (Gen.clique 4));
        Alcotest.(check (option int)) "disconnected" None (Paths.diameter (Graph.create 3)));
    tc "is_connected" (fun () ->
        check_true "path" (Paths.is_connected (Gen.path 6));
        check_false "isolated" (Paths.is_connected (Graph.of_edges 3 [ (0, 1) ]));
        check_true "single" (Paths.is_connected (Graph.create 1));
        check_true "empty graph" (Paths.is_connected (Graph.create 0)));
    tc "components" (fun () ->
        let g = Graph.of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
        Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
          (Paths.components g));
    tc "reachable_count" (fun () ->
        check_int "all" 5 (Paths.reachable_count (Gen.path 5) 2);
        check_int "partial" 2 (Paths.reachable_count (Graph.of_edges 5 [ (0, 1) ]) 0));
    tc "neigh_at_most and neigh_exactly" (fun () ->
        let g = Gen.path 5 in
        Alcotest.(check (list int)) "<=1 from 2" [ 1; 2; 3 ] (Paths.neigh_at_most g 2 1);
        Alcotest.(check (list int)) "=2 from 0" [ 2 ] (Paths.neigh_exactly g 0 2);
        Alcotest.(check (list int)) "=0 is self" [ 2 ] (Paths.neigh_exactly g 2 0));
    tc "bridges of a tree are all edges" (fun () ->
        let g = Gen.star 5 in
        check_int "count" 4 (List.length (Paths.bridges g)));
    tc "bridges of a cycle are empty" (fun () ->
        Alcotest.(check (list (pair int int))) "none" [] (Paths.bridges (Gen.cycle 6)));
    tc "bridges of a lollipop" (fun () ->
        (* triangle 0-1-2 plus pendant path 2-3-4 *)
        let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4) ] in
        Alcotest.(check (list (pair int int))) "pendant edges only" [ (2, 3); (3, 4) ]
          (Paths.bridges g));
    tc "bridges on disconnected graph" (fun () ->
        let g = Graph.of_edges 5 [ (0, 1); (2, 3); (3, 4); (2, 4) ] in
        Alcotest.(check (list (pair int int))) "only 0-1" [ (0, 1) ] (Paths.bridges g));
    tc "bridges survive deep recursion" (fun () ->
        (* a 20000-vertex path would overflow a naive recursive DFS *)
        let g = Gen.path 20000 in
        check_int "all bridges" 19999 (List.length (Paths.bridges g)));
  ]
