bench/main.mli:
