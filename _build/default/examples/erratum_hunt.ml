(* How this reproduction found an erratum in Lemma 2.4.

   The lemma says the cycle C_n is a Bilateral Strong Equilibrium for
   alpha in an explicit window around n^2/4.  Measuring the window with
   the exact checkers disagrees with the stated odd-n upper endpoint -
   and the disagreement reduces to a one-line calculation.

   Run with: dune exec examples/erratum_hunt.exe *)

let () =
  print_endline "Hunting the Lemma 2.4 window for C5\n";

  (* Step 1: the paper's window. *)
  let n = 5 in
  let lo, hi = Cycle.bse_alpha_range n in
  Printf.printf "paper's window for C%d: (%g, %g)\n" n lo hi;

  (* Step 2: measure the real window with bisection over exact checks. *)
  let grid = List.init 30 (fun i -> 0.5 +. (float_of_int i *. 0.25)) in
  let p = Alpha_profile.scan ~tolerance:1e-4 ~concept:Concept.BSE ~grid (Gen.cycle n) in
  Format.printf "measured BSE window:    %a@." Alpha_profile.pp p;

  (* Step 3: the measured upper end is 4, not 6.  Ask the checker why. *)
  let alpha = 4.5 in
  (match Strong_eq.check_outcomes ~k:n ~alpha (Gen.cycle n) with
  | Verdict.Unstable m ->
      Printf.printf "\nat alpha = %g (inside the stated window!) the checker finds: %s\n"
        alpha (Move.to_string m)
  | v -> Format.printf "unexpected: %s@." (Verdict.to_string v));

  (* Step 4: reduce to arithmetic.  An endpoint of an odd cycle that drops
     one edge turns the cycle into a path; its total distance rises from
     (n^2-1)/4 to n(n-1)/2, i.e. by exactly (n-1)^2/4. *)
  let g = Gen.cycle n in
  let before = (Paths.total_dist g 0).Paths.sum in
  let after = (Paths.total_dist (Graph.remove_edge g 0 1) 0).Paths.sum in
  Printf.printf
    "\ndistance cost of agent 0: %d before, %d after dropping one edge\n\
     => dropping pays off for every alpha > %d, but the paper's window\n\
     reaches %g.  The odd-n endpoint should be (n-1)^2/4 = %g.\n"
    before after (after - before) hi
    (Cycle.removal_threshold n);

  (* Step 5: the corrected window, as shipped in Cycle. *)
  let lo', hi' = Cycle.corrected_bse_alpha_range n in
  Printf.printf "\ncorrected window: (%g, %g) - see EXPERIMENTS.md (E-L24)\n" lo' hi';
  Printf.printf
    "(the paper's qualitative point survives: a Theta(n^2) window of\n\
     non-tree equilibria still exists, so no tree conjecture for the BNCG)\n"
