examples/isp_peering.ml: Bounds Concept Cost Graph Greedy_eq List Option Pairwise Paths Poa Printf Stretched Verdict
