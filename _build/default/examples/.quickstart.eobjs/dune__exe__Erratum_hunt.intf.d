examples/erratum_hunt.mli:
