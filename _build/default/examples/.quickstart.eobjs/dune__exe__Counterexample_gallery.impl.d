examples/counterexample_gallery.ml: Concept Counterexamples Dot Graph List Move Printf Strategy Unilateral Verdict Viz
