examples/counterexample_gallery.mli:
