examples/quickstart.mli:
