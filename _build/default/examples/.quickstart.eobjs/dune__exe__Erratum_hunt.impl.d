examples/erratum_hunt.ml: Alpha_profile Concept Cycle Format Gen Graph List Move Paths Printf Strong_eq Verdict
