examples/social_network.ml: Concept Cost Dynamics Float Format Gen List Printf Random Report Welfare
