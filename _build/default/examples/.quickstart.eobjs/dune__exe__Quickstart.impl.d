examples/quickstart.ml: Concept Cost Graph List Move Printf Verdict
