(* A guided tour of every witness graph in the paper, each re-verified by
   the exact checkers on the spot.

   Run with: dune exec examples/counterexample_gallery.exe *)

let show (c : Counterexamples.case) =
  Printf.printf "--- %s (n = %d, alpha = %g)\n" c.Counterexamples.name
    (Graph.n c.Counterexamples.graph) c.Counterexamples.alpha;
  Printf.printf "%s\n" c.Counterexamples.note;
  List.iter
    (fun concept ->
      Printf.printf "  stable for %-6s : %s\n" (Concept.name concept)
        (Verdict.to_string
           (Concept.check ~alpha:c.Counterexamples.alpha concept c.Counterexamples.graph)))
    c.Counterexamples.stable;
  List.iter
    (fun (concept, m) ->
      Printf.printf "  breaks %-6s via %s (improving: %b)\n" (Concept.name concept)
        (Move.to_string m)
        (Move.is_improving ~alpha:c.Counterexamples.alpha c.Counterexamples.graph m))
    c.Counterexamples.unstable;
  print_newline ()

(* Also leave DOT renderings next to the terminal output, so the figures
   can be drawn with graphviz: dot -Tsvg gallery-figure6.dot > figure6.svg *)
let render (c : Counterexamples.case) =
  let path = Printf.sprintf "gallery-%s.dot" c.Counterexamples.name in
  Dot.write_file path (Viz.case_to_dot c);
  Printf.printf "(wrote %s)\n\n" path

let () =
  print_endline "The counterexample gallery\n==========================\n";
  show Counterexamples.figure6;
  render Counterexamples.figure6;
  show Counterexamples.figure8_equivalent;
  render Counterexamples.figure8_equivalent;
  show (Counterexamples.figure7 ~k:2);
  show Counterexamples.figure5;

  print_endline "--- Figure 1b: all eight (RE, BAE, BSwE) regions";
  List.iter
    (fun ((re, bae, bswe), (g, alpha)) ->
      Printf.printf "  RE=%-5b BAE=%-5b BSwE=%-5b  <- n=%d, m=%d, alpha=%g\n" re bae bswe
        (Graph.n g) (Graph.num_edges g) alpha)
    (Counterexamples.venn_signatures ());
  print_newline ();

  print_endline "--- Figure 2: the Corbo-Parkes conjecture refutation";
  (match Counterexamples.search_figure2 () with
  | Some w ->
      let g = Strategy.graph w.Counterexamples.assignment in
      Printf.printf "  %s, alpha = %g\n" (Graph.to_string g) w.Counterexamples.w_alpha;
      Printf.printf "  exact NE in the unilateral NCG: %b\n"
        (Unilateral.is_nash ~alpha:w.Counterexamples.w_alpha w.Counterexamples.assignment
        = Ok ());
      let agent, target = w.Counterexamples.removal in
      Printf.printf "  yet agent %d 'wants out' of edge %d-%d she does not own\n" agent
        agent target
  | None -> print_endline "  (search found no witness - unexpected)");
  print_newline ();
  print_endline "All claims above were re-verified by the exact checkers."
