(* Quickstart: build a network, price it, and ask which solution concepts
   it survives.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Six agents; edges need mutual consent and cost alpha per endpoint. *)
  let alpha = 2.0 in
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ] in
  Printf.printf "network: %s\nalpha = %g\n\n" (Graph.to_string g) alpha;

  (* Per-agent costs: alpha * degree + sum of hop distances. *)
  print_endline "agent costs (buy + dist):";
  for u = 0 to Graph.n g - 1 do
    let c = Cost.agent_cost ~alpha g u in
    Printf.printf "  agent %d: %.1f + %d = %.1f\n" u c.Cost.buy c.Cost.dist (Cost.money c)
  done;

  (* Social cost and the social cost ratio against the optimum (a star). *)
  Printf.printf "\nsocial cost: %.1f   (optimum %.1f, rho = %.3f)\n"
    (Cost.social_money (Cost.social_cost ~alpha g))
    (Cost.opt_cost ~alpha (Graph.n g))
    (Cost.rho ~alpha g);

  (* Which solution concepts is this path stable for? *)
  print_endline "\nstability:";
  List.iter
    (fun concept ->
      Printf.printf "  %-6s %s\n" (Concept.name concept)
        (Verdict.to_string (Concept.check ~alpha concept g)))
    Concept.all_fixed;

  (* The checkers return concrete improving moves: apply one. *)
  match Concept.check ~alpha Concept.PS g with
  | Verdict.Unstable m ->
      let g' = Move.apply g m in
      Printf.printf "\napplying %s lowers rho from %.3f to %.3f\n" (Move.to_string m)
        (Cost.rho ~alpha g) (Cost.rho ~alpha g')
  | Verdict.Stable | Verdict.Exhausted _ -> print_endline "\nalready pairwise stable"
