(* Internet-flavoured scenario: autonomous systems build expensive peering
   links (alpha far above n), every link needs a contract signed by both
   sides, and traffic cost is the hop distance to everyone else.

   In this price regime the paper's worst stable topologies are the
   stretched trees of Section 3.2.2: long chains that no pair can fix,
   because the agent who would have to accept the shortcut pays alpha and
   gains too little.  Coalitions of three escape (Theorem 3.15).

   Run with: dune exec examples/isp_peering.exe *)

let () =
  (* A bad-but-stable backbone: the Theorem 3.10 stretched tree star. *)
  let alpha = 480. in
  let star = Stretched.theorem_310_star ~alpha ~eta:(int_of_float alpha) in
  let g = star.Stretched.star_graph in
  let n = Graph.n g in
  Printf.printf "backbone: %d ASes, link price alpha = %g (>> n)\n" n alpha;
  Printf.printf "topology: %d stretched trees of %d nodes under one root\n"
    star.Stretched.copies
    (Graph.n star.Stretched.subtree.Stretched.graph);
  Printf.printf "diameter: %d hops\n\n" (Option.value ~default:0 (Paths.diameter g));

  (* No bilateral renegotiation fixes it. *)
  Printf.printf "pairwise stable:        %s\n"
    (Verdict.to_string (Pairwise.check ~alpha g));
  Printf.printf "swap stable (BGE):      %s\n"
    (Verdict.to_string (Greedy_eq.check ~alpha g));
  Printf.printf "social cost ratio rho:  %.2f   (paper: Theta(log alpha) = %.2f..%.2f)\n\n"
    (Cost.rho ~alpha g)
    (Bounds.thm310_bge_lower ~alpha)
    (Bounds.thm36_bswe_upper ~alpha);

  (* The designer's fix: allow three-party contracts.  Theorem 3.15 caps
     the inefficiency of every 3-BSE tree at rho <= 25, and at exhaustive
     scale we can certify the actual worst case. *)
  let n_small = 10 in
  print_endline "the designer's knob, certified over ALL 10-AS tree topologies:";
  List.iter
    (fun alpha ->
      let ps = Poa.worst_tree ~concept:Concept.PS ~alpha n_small in
      let bse3 = Poa.worst_tree ~concept:(Concept.KBSE 3) ~alpha n_small in
      Printf.printf
        "  alpha = %-4g worst pairwise-stable rho = %.3f   worst 3-BSE rho = %.3f\n"
        alpha ps.Poa.rho bse3.Poa.rho)
    [ 4.; 16.; 64. ];
  print_endline
    "\nreading: with bilateral contracts only, Theta(log alpha) inefficiency\n\
     is stable (the backbone above); a protocol admitting three-party\n\
     contracts caps the inefficiency at a constant (Theorem 3.15:\n\
     rho <= 25) - and at certifiable scale the worst 3-BSE topology is\n\
     never worse than the worst pairwise-stable one."
