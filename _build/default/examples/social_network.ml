(* The paper's motivating story: social ties need mutual consent, so what
   the platform (the "system designer") allows as a renegotiation protocol
   decides how good the stable networks are.

   We grow friendship networks from random seeds under three protocols:

   - PS     : people can drop a tie alone or form one together;
   - BGE    : additionally, a pair may *swap* a tie;
   - 3-BSE  : trios may renegotiate jointly.

   The paper predicts the cooperation dividend: the worst stable states
   improve from Theta(min(sqrt a, n/sqrt a)) through Theta(log a) to
   Theta(1) as the protocol gets more cooperative (Table 1).

   Run with: dune exec examples/social_network.exe *)

let protocols = [ Concept.PS; Concept.BGE; Concept.KBSE 3 ]

let () =
  let n = 12 and alpha = 4.0 and seeds = 15 in
  Printf.printf
    "growing %d-person friendship networks (tie price alpha = %g) from %d\n\
     random seed trees under three renegotiation protocols\n\n"
    n alpha seeds;
  let header = [ "protocol"; "converged"; "avg steps"; "avg rho"; "worst rho" ] in
  let rows =
    List.map
      (fun concept ->
        let rng = Random.State.make [| 77 |] in
        let converged = ref 0 and steps = ref 0 in
        let rho_sum = ref 0. and rho_worst = ref 0. in
        for _ = 1 to seeds do
          let seed = Gen.random_tree rng n in
          let out = Dynamics.run ~max_steps:500 ~concept ~alpha seed in
          if out.Dynamics.status = Dynamics.Converged then begin
            incr converged;
            steps := !steps + out.Dynamics.steps;
            let rho = Cost.rho ~alpha out.Dynamics.final in
            rho_sum := !rho_sum +. rho;
            if rho > !rho_worst then rho_worst := rho
          end
        done;
        let c = float_of_int !converged in
        [
          Concept.name concept;
          Printf.sprintf "%d/%d" !converged seeds;
          Printf.sprintf "%.1f" (float_of_int !steps /. Float.max c 1.);
          Printf.sprintf "%.3f" (!rho_sum /. Float.max c 1.);
          Printf.sprintf "%.3f" !rho_worst;
        ])
      protocols
  in
  Report.print_table ~header rows;
  print_endline
    "\nreading: with only pairwise stability the dynamics can get stuck in\n\
     long, expensive networks; allowing swaps (BGE) or trio renegotiation\n\
     (3-BSE) drives the stable states towards the social optimum (rho -> 1),\n\
     which is exactly the trend of Table 1 in the paper.";
  (* show one concrete stuck state *)
  let rng = Random.State.make [| 3 |] in
  let seed = Gen.random_tree rng n in
  let ps = Dynamics.run ~max_steps:500 ~concept:Concept.PS ~alpha seed in
  let bse3 = Dynamics.run ~max_steps:500 ~concept:(Concept.KBSE 3) ~alpha seed in
  Printf.printf
    "\nexample seed: PS settles at rho = %.3f, the same seed under 3-BSE\n\
     settles at rho = %.3f\n"
    (Cost.rho ~alpha ps.Dynamics.final)
    (Cost.rho ~alpha bse3.Dynamics.final);

  (* organic (preferential-attachment) communities instead of uniform
     trees: hubs emerge, and the welfare statistics show who carries the
     network *)
  let pa = Gen.preferential_attachment (Random.State.make [| 9 |]) n ~m:1 in
  let out = Dynamics.run ~max_steps:500 ~concept:Concept.BGE ~alpha pa in
  Printf.printf
    "\norganic seed (preferential attachment): BGE dynamics %s after %d steps\n"
    (Dynamics.status_to_string out.Dynamics.status)
    out.Dynamics.steps;
  Format.printf "  welfare before: %a@." Welfare.pp (Welfare.analyze ~alpha pa);
  Format.printf "  welfare after:  %a@." Welfare.pp (Welfare.analyze ~alpha out.Dynamics.final)
