lib/constructions/cycle.mli: Graph
