lib/constructions/counterexamples.mli: Concept Graph Move Strategy
