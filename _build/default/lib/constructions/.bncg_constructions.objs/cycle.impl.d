lib/constructions/cycle.ml: Float Gen
