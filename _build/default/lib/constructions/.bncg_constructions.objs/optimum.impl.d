lib/constructions/optimum.ml: Cost Enumerate Float Gen Graph
