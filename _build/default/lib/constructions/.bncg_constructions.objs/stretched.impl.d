lib/constructions/stretched.ml: Array Float Graph List
