lib/constructions/counterexamples.ml: Add_eq Array Concept Enumerate Gen Graph List Move Paths Printf Remove_eq Strategy Swap_eq Tree Unilateral Verdict
