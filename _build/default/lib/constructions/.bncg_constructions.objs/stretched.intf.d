lib/constructions/stretched.mli: Graph
