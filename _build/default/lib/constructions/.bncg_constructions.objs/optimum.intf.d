lib/constructions/optimum.mli: Graph
