(** Stretched binary trees and stretched tree stars (Section 3.2.2,
    Figure 3) — the lower-bound families behind the Ω(log α) PoA results
    for BGE (Theorem 3.10) and BNE (Theorem 3.12).

    A stretched binary tree with parameters [d] and [k] replaces every
    edge of a complete binary tree of depth [d] by a path of [k] edges; it
    has [(2^{d+1} − 2) k + 1] vertices and [dist_T(u, v) = k · dist_B(u, v)]
    for original vertices.  A stretched tree star glues
    [⌈(η − 1) / |T|⌉] copies of such a tree below a fresh root. *)

type t = {
  graph : Graph.t;
  d : int;  (** depth of the underlying complete binary tree *)
  k : int;  (** stretch factor *)
  b_vertex : int array;
      (** [b_vertex.(i)] is the graph vertex carrying the [i]-th vertex of
          the underlying binary tree (BFS numbering, root first) *)
}
(** A stretched binary tree together with its skeleton embedding. *)

val binary_tree : d:int -> k:int -> t
(** [binary_tree ~d ~k] is the stretched binary tree.  The root is vertex
    [0].
    @raise Invalid_argument if [d < 0] or [k < 1]. *)

val size : d:int -> k:int -> int
(** Closed-form vertex count [(2^{d+1} − 2) k + 1]. *)

val max_depth_for_size : k:int -> target:float -> int
(** [max_depth_for_size ~k ~target] is the maximal [d] with
    [size ~d ~k <= target], per the stretched-tree-star definition.
    @raise Invalid_argument if even [d = 1] does not fit
    (the definition requires [target >= 2k + 1]). *)

val bge_stable_alpha : k:int -> n:int -> float
(** [bge_stable_alpha ~k ~n = 7kn]: Proposition 3.8 guarantees the
    stretched binary tree is in BGE for [α ≥ 7kn]. *)

type star = {
  star_graph : Graph.t;
  subtree : t;  (** the repeated stretched tree *)
  copies : int;  (** number of copies below the root *)
  copy_roots : int array;  (** graph vertex of each copy's root *)
}
(** A stretched tree star; the root is vertex [0]. *)

val tree_star : k:int -> target_subtree:float -> target_size:int -> star
(** [tree_star ~k ~target_subtree ~target_size] builds the stretched tree
    star with stretch [k], subtree-size target [t] and total-size target
    [η]: [⌈(η−1)/|T|⌉] copies of the maximal stretched tree of size at most
    [t].  By Lemma D.9 the result has [η ≤ n ≤ 3η/2] vertices.
    @raise Invalid_argument if the parameter constraints
    [t ≥ 2k + 1], [η ≥ 2t + 1] fail. *)

val theorem_310_star : alpha:float -> eta:int -> star
(** The Theorem 3.10 instance: [k = 1], [t = α / 15], [η] as given — in
    BGE for sufficiently large [α ≤ η], with ρ ≥ (log α)/4 − 17/8. *)

val theorem_312i_star : alpha:float -> eta:int -> epsilon:float -> star
(** The Theorem 3.12 (i) instance: [k = ⌊α/(9η)⌋], [t = η^{1−ε/2}] — a BNE
    for [9η ≤ α ≤ η^{2−ε}]. *)

val theorem_312ii_star : alpha:float -> eta:int -> epsilon:float -> star
(** The Theorem 3.12 (ii) instance: [k = 1], [t = η^ε] — a BNE for
    [η^{1/2+ε} ≤ α ≤ η]. *)
