(** The paper's witness graphs (Figures 1b, 2, 5, 6, 7, 8 and relatives).

    Figures 6 and 7 are reconstructed {e exactly} from the numeric facts in
    the appendix proofs (every stated distance cost is reproduced; see the
    implementation comments).  Figure 5 is rebuilt from its stated gain
    arithmetic (104 / 105 / "a improves by 2") with explicitly verified
    parameters.  Figure 8 and Figure 2 are existential claims whose
    original drawings are not fully specified by the text; for those we
    provide a small equivalent witness ({!figure8_equivalent}) and an
    exhaustive search ({!search_figure2}) that recovers a witness from
    scratch — both substitutions are recorded in DESIGN.md. *)

type case = {
  name : string;
  graph : Graph.t;
  alpha : float;
  stable : Concept.t list;  (** concepts the graph is claimed stable for *)
  unstable : (Concept.t * Move.t) list;
      (** concepts it violates, with an explicit improving move *)
  note : string;
}
(** A self-describing counterexample; tests re-verify every claim. *)

val figure5 : case
(** In BAE and BGE but not BNE (Proposition A.4): a root [a] with 54
    pendant leaves, two children [b₁], [b₂] with 23 leaves each, and
    grandchildren [c₁], [c₂] with 24 leaves each; [α = 104.5].  Agent [a]
    cannot improve by one swap (the partner [cᵢ] gains only 104 < α), but
    the simultaneous double swap gives each [cᵢ] 105 > α and [a] improves
    by 2. *)

val figure6 : case
(** In BNE but not 2-BSE (Proposition A.5): the 6-cycle
    [a₁-c₁-a₂-a₃-c₂-a₄] with pendant [bᵢ] at each [aᵢ], [α = 6].  The
    stated distance costs dist(a)=19, dist(b)=27, dist(c)=19 are
    reproduced exactly.  Coalition [{a₁, a₃}] improves by trading the
    edges to the [c]s for the chord [a₁a₃]. *)

val figure7 : k:int -> case
(** In k-BSE but not BNE (Proposition A.7): a spider with [i = 20k] legs
    [a-bⱼ-cⱼ-dⱼ], [α = 76k].  The neighborhood move around [a] that swaps
    all [b]-edges for [c]-edges improves [a] (distance 6i → 5i) and every
    [cⱼ] (4 + 12(i−1) → 3 + 8(i−1)), exactly as in the proof. *)

val figure6_vertex_names : string array
(** Human-readable labels for {!figure6}'s vertices. *)

val figure8_equivalent : case
(** In BAE (bilateral) but not in unilateral Add Equilibrium
    (Proposition 2.1, reverse direction): a broom — path [0-1-2] with five
    leaves at [2], [α = 5].  Agent [0] gains 6 > α by buying [0-2] alone,
    but agent [2] gains only 1, so the bilateral addition fails. *)

type unilateral_witness = {
  assignment : Strategy.assignment;
  w_alpha : float;
  removal : int * int;  (** (agent, target): the bilateral RE violation *)
}
(** A witness for Proposition 2.3: NE in the unilateral NCG (under the
    given ownership) but not pairwise stable in the BNCG. *)

val search_figure2 : unit -> unilateral_witness option
(** Exhaustive search for a Proposition 2.3 witness over small connected
    graphs, ownerships, and an α grid; re-verifies NE exactly before
    returning.  Deterministic. *)

val venn_signatures : unit -> ((bool * bool * bool) * (Graph.t * float)) list
(** Witnesses for Figure 1b: for each achievable combination of
    (RE, BAE, BSwE) stability, one small graph and α realising exactly
    that signature.  Searches connected graphs up to 6 vertices over an α
    grid; the paper's Proposition A.1 says all 8 combinations exist. *)
