type case = {
  name : string;
  graph : Graph.t;
  alpha : float;
  stable : Concept.t list;
  unstable : (Concept.t * Move.t) list;
  note : string;
}

(* ------------------------------------------------------------------ *)
(* Figure 5: BAE ∧ BGE but not BNE                                     *)
(* ------------------------------------------------------------------ *)

(* Shape recovered from the proof of Proposition A.4: a root [a] whose own
   leaf mass makes cross-swaps unattractive, two arms a-bᵢ-cᵢ with leaf
   masses m on bᵢ and t = m + 1 on cᵢ.  Then for agent a a single swap
   a-bᵢ → a-cᵢ gains exactly t − m = 1 and the partner cᵢ gains
   3 + E + m + t = 104 (with E = 54, m = 23, t = 24), while the double
   swap gains cᵢ one more (105) — reproducing the constants in the
   paper. *)
let figure5 =
  let e_count = 54 and m = 23 and t = 24 in
  let g = ref (Graph.create (1 + e_count + (2 * (2 + m + t)))) in
  let next = ref 1 in
  let alloc () =
    let v = !next in
    incr next;
    v
  in
  let a = 0 in
  for _ = 1 to e_count do
    g := Graph.add_edge !g a (alloc ())
  done;
  let arm () =
    let b = alloc () in
    g := Graph.add_edge !g a b;
    for _ = 1 to m do
      g := Graph.add_edge !g b (alloc ())
    done;
    let c = alloc () in
    g := Graph.add_edge !g b c;
    for _ = 1 to t do
      g := Graph.add_edge !g c (alloc ())
    done;
    (b, c)
  in
  let b1, c1 = arm () in
  let b2, c2 = arm () in
  {
    name = "figure5";
    graph = !g;
    alpha = 104.5;
    stable = [ Concept.RE; Concept.BAE; Concept.BSwE; Concept.PS; Concept.BGE ];
    unstable =
      [
        (Concept.BNE, Move.Neighborhood { agent = a; drop = [ b1; b2 ]; add = [ c1; c2 ] });
      ];
    note =
      "Proposition A.4: single swaps fail (partner gains 104 < α = 104.5) but \
       the double swap around a succeeds (partners gain 105).";
  }

(* ------------------------------------------------------------------ *)
(* Figure 6: BNE but not 2-BSE                                         *)
(* ------------------------------------------------------------------ *)

(* Exact reconstruction.  Vertices 0..3 = a₁..a₄, 4..7 = b₁..b₄,
   8..9 = c₁..c₂.  Edges: the 6-cycle a₁-c₁-a₂-a₃-c₂-a₄-a₁ plus a pendant
   bᵢ on each aᵢ.  This reproduces every number in the proof of
   Proposition A.5: dist(a) = 19, dist(b) = 27, dist(c) = 19; an a-vertex
   sees two vertices at distance 3 and one at distance 4; a c-vertex sees
   three at distance 3; connecting b₁ to the rest of B gains exactly 12. *)
let figure6_vertex_names = [| "a1"; "a2"; "a3"; "a4"; "b1"; "b2"; "b3"; "b4"; "c1"; "c2" |]

let figure6 =
  let a1 = 0 and a2 = 1 and a3 = 2 and a4 = 3 in
  let b1 = 4 and b2 = 5 and b3 = 6 and b4 = 7 in
  let c1 = 8 and c2 = 9 in
  let g =
    Graph.of_edges 10
      [
        (a1, c1); (c1, a2); (a2, a3); (a3, c2); (c2, a4); (a4, a1);
        (a1, b1); (a2, b2); (a3, b3); (a4, b4);
      ]
  in
  {
    name = "figure6";
    graph = g;
    alpha = 6.;
    stable = [ Concept.RE; Concept.BAE; Concept.PS; Concept.BSwE; Concept.BGE; Concept.BNE ];
    unstable =
      [
        ( Concept.KBSE 2,
          Move.Coalition
            { members = [ a1; a3 ]; remove = [ (a1, c1); (a3, c2) ]; add = [ (a1, a3) ] } );
      ];
    note =
      "Proposition A.5: a BNE that coalition {a1,a3} destabilises by trading \
       their c-edges for the chord a1-a3 (distance cost 19 -> 17 each).";
  }

(* ------------------------------------------------------------------ *)
(* Figure 7: k-BSE but not BNE                                         *)
(* ------------------------------------------------------------------ *)

let figure7 ~k =
  if k < 2 then invalid_arg "Counterexamples.figure7: need k >= 2";
  let i = 20 * k in
  let n = (3 * i) + 1 in
  let g = ref (Graph.create n) in
  let a = 0 in
  let bs = Array.make i 0 and cs = Array.make i 0 in
  for j = 0 to i - 1 do
    let b = 1 + (3 * j) and c = 2 + (3 * j) and d = 3 + (3 * j) in
    bs.(j) <- b;
    cs.(j) <- c;
    g := Graph.add_edge (Graph.add_edge (Graph.add_edge !g a b) b c) c d
  done;
  {
    name = Printf.sprintf "figure7(k=%d)" k;
    graph = !g;
    alpha = float_of_int (76 * k);
    stable = [ Concept.KBSE k ];
    unstable =
      [
        ( Concept.BNE,
          Move.Neighborhood
            { agent = a; drop = Array.to_list bs; add = Array.to_list cs } );
      ];
    note =
      Printf.sprintf
        "Proposition A.7 with i = %d rows a-b-c-d: swapping every b-edge for a \
         c-edge improves a (6i -> 5i) and every c (4+12(i-1) -> 3+8(i-1) = gain \
         %d > α = %d)."
        i
        (1 + (4 * (i - 1)))
        (76 * k);
  }

(* ------------------------------------------------------------------ *)
(* Figure 8 equivalent: BAE but not unilateral AE                      *)
(* ------------------------------------------------------------------ *)

let figure8_equivalent =
  let g = Gen.broom ~handle:3 ~bristles:5 in
  {
    name = "figure8-equivalent";
    graph = g;
    alpha = 5.;
    stable = [ Concept.BAE ];
    unstable = [];
    note =
      "Proposition 2.1 (reverse direction): agent 0 gains 6 > α = 5 by buying \
       0-2 unilaterally, but agent 2 gains only 1 ≤ α, so no bilateral \
       addition is improving.  Simplified equivalent of the paper's Figure 8.";
  }

(* ------------------------------------------------------------------ *)
(* Figure 2 (Proposition 2.3): search                                  *)
(* ------------------------------------------------------------------ *)

type unilateral_witness = {
  assignment : Strategy.assignment;
  w_alpha : float;
  removal : int * int;
}

(* A bilateral RE violation at (g, α): an agent u and incident edge uv with
   distance increase < α when uv is removed. *)
let bilateral_removal_violation ~alpha g =
  match Remove_eq.check ~alpha g with
  | Verdict.Unstable (Move.Remove { agent; target }) -> Some (agent, target)
  | Verdict.Unstable _ | Verdict.Stable | Verdict.Exhausted _ -> None

let search_figure2 () =
  let found = ref None in
  let try_graph g =
    if !found = None && not (Tree.is_tree g) && Graph.num_edges g <= 9 then begin
      (* Candidate α values: removal deltas of edges ± a bit. *)
      let deltas =
        List.concat_map
          (fun (u, v) ->
            let g' = Graph.remove_edge g u v in
            if not (Paths.is_connected g') then []
            else
              let d u = (Paths.total_dist g' u).Paths.sum - (Paths.total_dist g u).Paths.sum in
              [ float_of_int (d u); float_of_int (d v) ])
          (Graph.edges g)
        |> List.sort_uniq compare
      in
      let alphas =
        List.concat_map (fun d -> [ d -. 0.5; d +. 0.5 ]) deltas
        |> List.filter (fun a -> a > 1.)
        |> List.sort_uniq compare
      in
      List.iter
        (fun alpha ->
          if !found = None then
            match bilateral_removal_violation ~alpha g with
            | None -> ()
            | Some (agent, target) ->
                (* Some agent wants out of edge (agent,target) bilaterally;
                   look for an ownership under which the graph is NE. *)
                List.iter
                  (fun assignment ->
                    if
                      !found = None
                      && Strategy.owner assignment agent target <> agent
                      && Unilateral.is_nash ~alpha assignment = Ok ()
                    then found := Some { assignment; w_alpha = alpha; removal = (agent, target) })
                  (Strategy.all_assignments g))
        alphas
    end
  in
  List.iter try_graph (Enumerate.connected_graphs_iso 5);
  if !found = None then List.iter try_graph (Enumerate.connected_graphs_iso 6);
  !found

(* ------------------------------------------------------------------ *)
(* Figure 1b: the eight (RE, BAE, BSwE) signatures                     *)
(* ------------------------------------------------------------------ *)

let venn_signatures () =
  let witnesses : ((bool * bool * bool) * (Graph.t * float)) list ref = ref [] in
  let alphas = [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.5; 6.0; 10.0; 25.0 ] in
  let consider g =
    List.iter
      (fun alpha ->
        if List.length !witnesses < 8 then begin
          let signature =
            ( Remove_eq.is_stable ~alpha g,
              Add_eq.is_stable ~alpha g,
              Swap_eq.is_stable ~alpha g )
          in
          if not (List.mem_assoc signature !witnesses) then
            witnesses := (signature, (g, alpha)) :: !witnesses
        end)
      alphas
  in
  (* A hand-built witness for (RE, BAE, ¬BSwE), which needs more vertices
     than the exhaustive sweep covers: the tree m-r-v-u with five leaves
     under u.  At α = 4, swapping uv for ur gains r the whole u-mass
     (6 > α) and gains u strictly (the m leaf comes closer), while no
     bilateral addition clears α for both sides. *)
  let double_broom =
    Graph.of_edges 9 [ (0, 1); (0, 2); (2, 3); (3, 4); (3, 5); (3, 6); (3, 7); (3, 8) ]
  in
  List.iter consider (Enumerate.free_trees 5);
  List.iter consider (Enumerate.connected_graphs_iso 4);
  List.iter consider (Enumerate.connected_graphs_iso 5);
  List.iter consider (Enumerate.connected_graphs_iso 6);
  consider double_broom;
  List.rev !witnesses
