let graph n = Gen.cycle n

let bse_alpha_range n =
  if n < 3 then invalid_arg "Cycle.bse_alpha_range: need n >= 3";
  let nf = float_of_int n in
  if n mod 2 = 0 then ((nf *. nf /. 4.) -. (nf -. 1.), nf *. (nf -. 2.) /. 4.)
  else
    let quarter = (nf +. 1.) *. (nf -. 1.) /. 4. in
    (quarter -. (nf -. 1.), quarter)

let removal_threshold n =
  if n < 3 then invalid_arg "Cycle.removal_threshold: need n >= 3";
  let nf = float_of_int n in
  if n mod 2 = 0 then nf *. (nf -. 2.) /. 4. else (nf -. 1.) *. (nf -. 1.) /. 4.

let corrected_bse_alpha_range n =
  let lo, hi = bse_alpha_range n in
  (lo, Float.min hi (removal_threshold n))

let midpoint_alpha n =
  let lo, hi = corrected_bse_alpha_range n in
  (lo +. hi) /. 2.
