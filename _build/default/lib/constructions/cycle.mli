(** Cycles as Bilateral Strong Equilibria (Lemma 2.4).

    [C_n] is in BSE for an α window around [n²/4]; this is the paper's
    witness that, unlike the unilateral NCG, no tree conjecture can hold
    for the BNCG.

    {b Reproduction erratum.}  For odd [n] the paper states the window
    [((n+1)(n-1)/4 − (n−1), (n+1)(n-1)/4)], but an endpoint of an odd
    cycle improves by dropping one edge as soon as
    [α > (n−1)²/4] — its total distance rises from [(n²−1)/4] to
    [n(n−1)/2], a difference of exactly [(n−1)²/4] — so [C_n] is not even
    in Remove Equilibrium on the upper part of the stated window.  The
    exact outcome-enumeration checker confirms this (e.g. [C₅] at
    [α = 4.5] is refuted by a single removal).  {!corrected_bse_alpha_range}
    caps the window accordingly; for even [n] paper and measurement
    agree. *)

val graph : int -> Graph.t
(** [graph n] is [C_n].  Same as {!Gen.cycle}. *)

val bse_alpha_range : int -> float * float
(** [bse_alpha_range n] is the open interval [(lo, hi)] exactly as stated
    in the paper's Lemma 2.4: [(n²/4 − (n−1), n(n−2)/4)] for even [n] and
    [((n+1)(n−1)/4 − (n−1), (n+1)(n−1)/4)] for odd [n].
    @raise Invalid_argument if [n < 3]. *)

val removal_threshold : int -> float
(** [removal_threshold n] is the exact α above which an agent of [C_n]
    improves by dropping one incident edge: [n(n−2)/4] for even [n],
    [(n−1)²/4] for odd [n]. *)

val corrected_bse_alpha_range : int -> float * float
(** The paper's window capped at {!removal_threshold} — the range our
    exact checkers certify. *)

val midpoint_alpha : int -> float
(** A convenient α strictly inside {!corrected_bse_alpha_range}. *)
