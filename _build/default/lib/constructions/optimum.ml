let graph ~alpha n = if alpha < 1. then Gen.clique n else Gen.star n

let cost ~alpha n = Cost.opt_cost ~alpha n

let is_optimal ~alpha g =
  let s = Cost.social_cost ~alpha g in
  s.Cost.disconnected_pairs = 0
  && Float.abs (Cost.social_money s -. cost ~alpha (Graph.n g)) < 1e-6

let verify_exhaustively ~alpha n =
  let opt = cost ~alpha n in
  let ok = ref true in
  Enumerate.iter_connected_graphs n (fun g ->
      let s = Cost.social_cost ~alpha g in
      if Cost.social_money s < opt -. 1e-6 then ok := false);
  !ok
