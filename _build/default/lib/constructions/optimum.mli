(** Social optima of the BNCG (Section 3.1): the clique for [α < 1], the
    star for [α ≥ 1] (both at [α = 1]). *)

val graph : alpha:float -> int -> Graph.t
(** [graph ~alpha n] is a social optimum for the given parameters. *)

val cost : alpha:float -> int -> float
(** Same as {!Cost.opt_cost}. *)

val is_optimal : alpha:float -> Graph.t -> bool
(** [is_optimal ~alpha g] is [true] iff [g]'s social cost equals the
    optimum for its size (up to floating tolerance). *)

val verify_exhaustively : alpha:float -> int -> bool
(** [verify_exhaustively ~alpha n] checks by enumeration over all
    connected graphs that no graph on [n] vertices beats
    {!Cost.opt_cost} — a direct audit of the Section 3.1 claim.
    @raise Invalid_argument if [n > 7]. *)
