type t = { graph : Graph.t; d : int; k : int; b_vertex : int array }

let size ~d ~k = (((1 lsl (d + 1)) - 2) * k) + 1

let binary_tree ~d ~k =
  if d < 0 then invalid_arg "Stretched.binary_tree: negative depth";
  if k < 1 then invalid_arg "Stretched.binary_tree: stretch must be >= 1";
  let b_count = (1 lsl (d + 1)) - 1 in
  let n = size ~d ~k in
  let b_vertex = Array.make b_count 0 in
  let g = ref (Graph.create n) in
  let next = ref 1 in
  (* BFS order over the binary tree: vertex i has children 2i+1, 2i+2. *)
  for i = 1 to b_count - 1 do
    let parent_t = b_vertex.((i - 1) / 2) in
    (* Allocate the path u^1 .. u^{k-1}, u for binary vertex i. *)
    let first = !next in
    next := !next + k;
    let rec link prev j =
      if j < k then begin
        g := Graph.add_edge !g prev (first + j);
        link (first + j) (j + 1)
      end
    in
    link parent_t 0;
    b_vertex.(i) <- first + k - 1
  done;
  { graph = !g; d; k; b_vertex }

let max_depth_for_size ~k ~target =
  if float_of_int (size ~d:1 ~k) > target then
    invalid_arg "Stretched.max_depth_for_size: target below 2k + 1";
  let rec go d = if float_of_int (size ~d:(d + 1) ~k) > target then d else go (d + 1) in
  go 1

let bge_stable_alpha ~k ~n = float_of_int (7 * k * n)

type star = { star_graph : Graph.t; subtree : t; copies : int; copy_roots : int array }

let tree_star ~k ~target_subtree ~target_size =
  if target_subtree < float_of_int ((2 * k) + 1) then
    invalid_arg "Stretched.tree_star: target_subtree below 2k + 1";
  if float_of_int target_size < (2. *. target_subtree) +. 1. then
    invalid_arg "Stretched.tree_star: target_size below 2t + 1";
  let d = max_depth_for_size ~k ~target:target_subtree in
  let subtree = binary_tree ~d ~k in
  let sub_n = Graph.n subtree.graph in
  let copies = (target_size - 1 + sub_n - 1) / sub_n in
  let n = 1 + (copies * sub_n) in
  let g = ref (Graph.create n) in
  let copy_roots = Array.make copies 0 in
  for c = 0 to copies - 1 do
    let shift = 1 + (c * sub_n) in
    copy_roots.(c) <- shift;
    List.iter
      (fun (u, v) -> g := Graph.add_edge !g (u + shift) (v + shift))
      (Graph.edges subtree.graph);
    g := Graph.add_edge !g 0 shift
  done;
  { star_graph = !g; subtree; copies; copy_roots }

let theorem_310_star ~alpha ~eta = tree_star ~k:1 ~target_subtree:(alpha /. 15.) ~target_size:eta

let theorem_312i_star ~alpha ~eta ~epsilon =
  let k = max 1 (int_of_float (alpha /. (9. *. float_of_int eta))) in
  let t = Float.pow (float_of_int eta) (1. -. (epsilon /. 2.)) in
  tree_star ~k ~target_subtree:t ~target_size:eta

let theorem_312ii_star ~alpha ~eta ~epsilon =
  ignore alpha;
  let t = Float.pow (float_of_int eta) epsilon in
  tree_star ~k:1 ~target_subtree:t ~target_size:eta
