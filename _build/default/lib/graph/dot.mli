(** Graphviz DOT export, for rendering the paper's constructions and the
    outcomes of dynamics.

    The output is plain [graph { ... }] text: pipe it through
    [dot -Tsvg] / [neato -Tpng] to draw.  Move overlays (drawing a
    checker's witness on top of a graph) live in {!Viz} in the analysis
    library. *)

type edge_style = Solid | Dashed | Dotted
(** Stroke styles for {!to_dot}'s [styled_edges]. *)

val to_dot :
  ?name:string ->
  ?labels:(int -> string) ->
  ?highlight_nodes:int list ->
  ?styled_edges:((int * int) * edge_style * string) list ->
  Graph.t ->
  string
(** [to_dot g] renders [g].  [labels] overrides node labels (default: the
    vertex number); [highlight_nodes] are filled red; [styled_edges] adds
    extra or restyles existing edges as [(edge, style, color)]. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes a DOT string to disk. *)
