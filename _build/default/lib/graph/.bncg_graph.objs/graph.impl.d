lib/graph/graph.ml: Array Buffer Format Hashtbl Int List Printf Stdlib
