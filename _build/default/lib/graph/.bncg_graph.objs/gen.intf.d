lib/graph/gen.mli: Graph Random
