lib/graph/encode.ml: Buffer Char Graph Printf String
