lib/graph/encode.mli: Graph
