lib/graph/iso.ml: Array Bytes Graph Hashtbl Int List Option Paths Printf String Tree
