lib/graph/gen.ml: Array Graph Hashtbl List Random Tree
