lib/graph/enumerate.ml: Array Gen Graph Hashtbl Iso List Option Paths
