lib/graph/tree.mli: Graph
