(** graph6 encoding (McKay's format), for compact storage of enumerated
    graphs and interoperability with nauty/networkx tooling. *)

val to_graph6 : Graph.t -> string
(** [to_graph6 g] is the graph6 string of [g].
    @raise Invalid_argument if [n g > 258047]. *)

val of_graph6 : string -> Graph.t
(** [of_graph6 s] parses a graph6 string.
    @raise Invalid_argument on malformed input. *)
