(** Rooted-tree views and 1-medians (Section 3.2 of the paper).

    The PoA proofs for tree equilibria root the tree at a 1-median [r] and
    argue about layers [ℓ(u)], subtrees [T_u] and their sizes and depths.
    This module provides all of those as [O(n)]-computable arrays. *)

val is_tree : Graph.t -> bool
(** [is_tree g] is [true] iff [g] is connected with exactly [n - 1] edges
    (the one-vertex and empty graphs count as trees and the empty graph as
    a trivial tree). *)

type rooted = {
  graph : Graph.t;
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  layer : int array;  (** [ℓ(u)]: hop distance from the root *)
  order : int array;  (** vertices in BFS order from the root *)
}
(** A connected tree together with a choice of root. *)

val root_at : Graph.t -> int -> rooted
(** [root_at g r] roots the tree [g] at [r].
    @raise Invalid_argument if [g] is not a connected tree. *)

val children : rooted -> int -> int list
(** [children t u] lists the children of [u], sorted increasing. *)

val subtree_sizes : rooted -> int array
(** [subtree_sizes t] gives [|T_u|] for every [u] ([|T_root| = n]). *)

val subtree_nodes : rooted -> int -> int list
(** [subtree_nodes t u] lists the vertices of [T_u] (sorted). *)

val subtree_depth : rooted -> int -> int
(** [subtree_depth t u] is the paper's [depth(T_u)]: the largest layer in
    [T_u] relative to [u]. *)

val depth : rooted -> int
(** [depth t] is [subtree_depth t t.root], i.e. the paper's [depth(G)]. *)

val total_dists : Graph.t -> int array
(** [total_dists g] gives [dist(u) = Σ_v dist(u,v)] for every [u] of a
    connected tree, computed in [O(n)] by rerooting.
    @raise Invalid_argument if [g] is not a connected tree. *)

val medians : Graph.t -> int list
(** [medians g] lists the 1-medians of the connected tree [g]: the vertices
    with minimum total distance.  A tree has one or two medians; when two,
    they are adjacent.
    @raise Invalid_argument if [g] is not a connected tree. *)

val median : Graph.t -> int
(** [median g] is the smallest-numbered 1-median. *)

val is_median_balanced : Graph.t -> int -> bool
(** [is_median_balanced g r] checks the equivalent characterisation used in
    the paper: removing [r] leaves components of size at most [n / 2]. *)

val path_between : rooted -> int -> int -> int list
(** [path_between t u v] is the unique [u]-[v] path in the tree, as a
    vertex list starting at [u] and ending at [v]. *)
