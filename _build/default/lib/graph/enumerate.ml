(* Beyer–Hedetniemi successor on canonical level sequences, 0-based levels:
   the first sequence is the path [0; 1; ...; n-1], the last is the star
   [0; 1; 1; ...; 1].  The successor of L is found by taking p = the last
   position with L.(p) >= 2 and q = the last position before p with
   L.(q) = L.(p) - 1 (the parent of p), then repeating the block
   L.(q .. p-1) to fill positions p .. n-1. *)

let level_sequence_to_tree levels =
  let n = Array.length levels in
  let g = ref (Graph.create n) in
  (* parent of i: nearest j < i with levels.(j) = levels.(i) - 1 *)
  for i = 1 to n - 1 do
    let rec find j = if levels.(j) = levels.(i) - 1 then j else find (j - 1) in
    g := Graph.add_edge !g i (find (i - 1))
  done;
  !g

let iter_rooted_trees n f =
  if n < 0 then invalid_arg "Enumerate.iter_rooted_trees: negative size";
  if n = 0 then ()
  else begin
    let levels = Array.init n (fun i -> i) in
    let continue = ref true in
    while !continue do
      f (level_sequence_to_tree levels, 0);
      (* successor *)
      let p = ref (n - 1) in
      while !p >= 0 && levels.(!p) < 2 do
        decr p
      done;
      if !p < 0 then continue := false
      else begin
        let q = ref (!p - 1) in
        while levels.(!q) <> levels.(!p) - 1 do
          decr q
        done;
        let block = !p - !q in
        for i = !p to n - 1 do
          levels.(i) <- levels.(i - block)
        done
      end
    done
  end

let rooted_tree_count n =
  let count = ref 0 in
  iter_rooted_trees n (fun _ -> incr count);
  !count

let free_trees n =
  if n < 0 then invalid_arg "Enumerate.free_trees: negative size";
  if n > 18 then invalid_arg "Enumerate.free_trees: size too large";
  if n = 0 then [ Graph.create 0 ]
  else begin
    let seen = Hashtbl.create 1024 in
    let out = ref [] in
    iter_rooted_trees n (fun (g, _root) ->
        let code = Iso.tree_code g in
        if not (Hashtbl.mem seen code) then begin
          Hashtbl.add seen code ();
          out := g :: !out
        end);
    List.rev !out
  end

let iter_labeled_trees n f =
  if n > 9 then invalid_arg "Enumerate.iter_labeled_trees: size too large";
  if n = 1 then f (Graph.create 1)
  else if n = 2 then f (Graph.add_edge (Graph.create 2) 0 1)
  else if n >= 3 then begin
    let code = Array.make (n - 2) 0 in
    let rec go i =
      if i = n - 2 then f (Gen.of_pruefer code)
      else
        for v = 0 to n - 1 do
          code.(i) <- v;
          go (i + 1)
        done
    in
    go 0
  end

let iter_connected_graphs n f =
  if n > 7 then invalid_arg "Enumerate.iter_connected_graphs: size too large";
  if n <= 0 then begin
    if n = 0 then f (Graph.create 0)
  end
  else begin
    let slots = n * (n - 1) / 2 in
    let pairs = Array.make slots (0, 0) in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        pairs.(!k) <- (u, v);
        incr k
      done
    done;
    for mask = 0 to (1 lsl slots) - 1 do
      let g = ref (Graph.create n) in
      for b = 0 to slots - 1 do
        if mask land (1 lsl b) <> 0 then begin
          let u, v = pairs.(b) in
          g := Graph.add_edge !g u v
        end
      done;
      if Paths.is_connected !g then f !g
    done
  end

let connected_graphs_iso n =
  let buckets : (string, Graph.t list) Hashtbl.t = Hashtbl.create 4096 in
  let out = ref [] in
  iter_connected_graphs n (fun g ->
      let fp = Iso.fingerprint g in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt buckets fp) in
      if not (List.exists (fun h -> Iso.isomorphic g h) bucket) then begin
        Hashtbl.replace buckets fp (g :: bucket);
        out := g :: !out
      end);
  List.rev !out
