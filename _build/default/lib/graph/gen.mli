(** Deterministic and random graph generators used throughout the paper:
    stars and cliques (social optima, Section 3.1), paths and cycles
    (Lemma 2.4), complete and almost-complete d-ary trees (Lemmas 3.18 and
    onwards), and random trees / connected graphs for property tests and
    dynamics experiments. *)

val star : int -> Graph.t
(** [star n] has centre [0] and leaves [1 .. n-1].  The social optimum for
    [α ≥ 1]. *)

val path : int -> Graph.t
(** [path n] is the path [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the cycle [C_n].
    @raise Invalid_argument if [n < 3]. *)

val clique : int -> Graph.t
(** [clique n] is the complete graph [K_n].  The social optimum for
    [α < 1]. *)

val complete_dary : d:int -> depth:int -> Graph.t
(** [complete_dary ~d ~depth] is the complete [d]-ary tree with root [0]
    and every internal vertex having exactly [d] children; vertices are
    numbered in BFS order.
    @raise Invalid_argument if [d < 1] or [depth < 0]. *)

val almost_complete_dary : d:int -> int -> Graph.t
(** [almost_complete_dary ~d n] is the almost complete [d]-ary tree on [n]
    vertices (BFS numbering: vertex [v ≥ 1] hangs below [(v - 1) / d]), as
    used by Lemma 3.18.
    @raise Invalid_argument if [d < 1] or [n < 0]. *)

val double_star : int -> int -> Graph.t
(** [double_star a b] is two adjacent centres with [a] and [b] pendant
    leaves; handy small non-star tree. *)

val broom : handle:int -> bristles:int -> Graph.t
(** [broom ~handle ~bristles] is a path of [handle] vertices whose last
    vertex carries [bristles] extra leaves. *)

val spider : legs:int -> leg_len:int -> Graph.t
(** [spider ~legs ~leg_len] is a root with [legs] disjoint paths of
    [leg_len] vertices attached — the [k]-stretched star. *)

val random_tree : Random.State.t -> int -> Graph.t
(** [random_tree rng n] is a uniformly random labelled tree on [n]
    vertices (random Prüfer sequence). *)

val random_connected : Random.State.t -> int -> p:float -> Graph.t
(** [random_connected rng n ~p] is a random tree plus each remaining vertex
    pair independently with probability [p]; always connected. *)

val preferential_attachment : Random.State.t -> int -> m:int -> Graph.t
(** [preferential_attachment rng n ~m] is a Barabási–Albert style graph:
    vertices arrive one by one and attach [m] edges to earlier vertices
    chosen proportionally to their current degree (plus one).  Always
    connected; a realistic heavy-tailed seed for dynamics experiments.
    @raise Invalid_argument if [m < 1] or [n < 1]. *)

val of_pruefer : int array -> Graph.t
(** [of_pruefer code] decodes a Prüfer sequence of length [k] into the
    corresponding labelled tree on [k + 2] vertices. *)

val of_parents : int array -> Graph.t
(** [of_parents parent] builds the tree where [parent.(0) = -1] and
    every other vertex [v] is adjacent to [parent.(v)].
    @raise Invalid_argument on malformed input. *)
