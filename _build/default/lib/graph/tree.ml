let is_tree g =
  let size = Graph.n g in
  size = 0 || (Graph.num_edges g = size - 1 && Paths.is_connected g)

type rooted = {
  graph : Graph.t;
  root : int;
  parent : int array;
  layer : int array;
  order : int array;
}

let require_tree g name =
  if not (is_tree g) then invalid_arg (Printf.sprintf "Tree.%s: not a tree" name)

let root_at g r =
  require_tree g "root_at";
  let size = Graph.n g in
  if r < 0 || r >= size then invalid_arg "Tree.root_at: root out of range";
  let parent = Array.make size (-1) in
  let layer = Array.make size (-1) in
  let order = Array.make size 0 in
  layer.(r) <- 0;
  order.(0) <- r;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = order.(!head) in
    incr head;
    Array.iter
      (fun v ->
        if layer.(v) < 0 then begin
          layer.(v) <- layer.(u) + 1;
          parent.(v) <- u;
          order.(!tail) <- v;
          incr tail
        end)
      (Graph.neighbors g u)
  done;
  { graph = g; root = r; parent; layer; order }

let children t u =
  Graph.fold_neighbors
    (fun acc v -> if t.parent.(v) = u then v :: acc else acc)
    [] t.graph u
  |> List.rev

let subtree_sizes t =
  let size = Graph.n t.graph in
  let sizes = Array.make size 1 in
  (* Reverse BFS order: every child is processed before its parent. *)
  for i = size - 1 downto 1 do
    let u = t.order.(i) in
    sizes.(t.parent.(u)) <- sizes.(t.parent.(u)) + sizes.(u)
  done;
  sizes

let subtree_nodes t u =
  (* A vertex v is in T_u iff the path from v to the root passes u, i.e.
     walking parents from v reaches u. *)
  let size = Graph.n t.graph in
  let acc = ref [] in
  for v = size - 1 downto 0 do
    let rec ascends w = w = u || (w >= 0 && ascends t.parent.(w)) in
    if ascends v then acc := v :: !acc
  done;
  !acc

let subtree_depth t u =
  let base = t.layer.(u) in
  List.fold_left
    (fun acc v -> max acc (t.layer.(v) - base))
    0 (subtree_nodes t u)

let depth t = subtree_depth t t.root

let total_dists g =
  require_tree g "total_dists";
  let size = Graph.n g in
  if size = 0 then [||]
  else begin
    let t = root_at g 0 in
    let sizes = subtree_sizes t in
    let dist = Array.make size 0 in
    (* dist at the root: sum of layers. *)
    dist.(0) <- Array.fold_left ( + ) 0 t.layer;
    (* Reroot along BFS order: moving from parent p to child c brings the
       |T_c| vertices of the subtree one step closer and pushes the other
       n - |T_c| one step away. *)
    for i = 1 to size - 1 do
      let c = t.order.(i) in
      let p = t.parent.(c) in
      dist.(c) <- dist.(p) - sizes.(c) + (size - sizes.(c))
    done;
    dist
  end

let medians g =
  require_tree g "medians";
  let size = Graph.n g in
  if size = 0 then []
  else begin
    let dist = total_dists g in
    let best = Array.fold_left min dist.(0) dist in
    let acc = ref [] in
    for u = size - 1 downto 0 do
      if dist.(u) = best then acc := u :: !acc
    done;
    !acc
  end

let median g =
  match medians g with
  | m :: _ -> m
  | [] -> invalid_arg "Tree.median: empty tree"

let is_median_balanced g r =
  require_tree g "is_median_balanced";
  let size = Graph.n g in
  let t = root_at g r in
  let sizes = subtree_sizes t in
  Graph.fold_neighbors (fun ok c -> ok && 2 * sizes.(c) <= size) true g r

let path_between t u v =
  let rec ancestors w acc = if w < 0 then acc else ancestors t.parent.(w) (w :: acc) in
  (* Both lists run root .. vertex; strip the common prefix, remembering the
     last common vertex (the LCA). *)
  let rec split pu pv lca =
    match (pu, pv) with
    | x :: pu', y :: pv' when x = y -> split pu' pv' x
    | _ -> (lca, pu, pv)
  in
  let lca, u_tail, v_tail = split (ancestors u []) (ancestors v []) (-1) in
  assert (lca >= 0);
  List.rev u_tail @ (lca :: v_tail)
