let star n =
  let g = Graph.create n in
  let rec go g v = if v >= n then g else go (Graph.add_edge g 0 v) (v + 1) in
  if n <= 1 then g else go g 1

let path n =
  let g = Graph.create n in
  let rec go g v = if v >= n - 1 then g else go (Graph.add_edge g v (v + 1)) (v + 1) in
  if n <= 1 then g else go g 0

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.add_edge (path n) 0 (n - 1)

let clique n =
  let g = ref (Graph.create n) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      g := Graph.add_edge !g u v
    done
  done;
  !g

let almost_complete_dary ~d n =
  if d < 1 then invalid_arg "Gen.almost_complete_dary: need d >= 1";
  if n < 0 then invalid_arg "Gen.almost_complete_dary: negative size";
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i + 1, i / d)))

let complete_dary ~d ~depth =
  if d < 1 then invalid_arg "Gen.complete_dary: need d >= 1";
  if depth < 0 then invalid_arg "Gen.complete_dary: negative depth";
  let size =
    if d = 1 then depth + 1
    else
      let rec pow acc i = if i = 0 then acc else pow (acc * d) (i - 1) in
      (pow 1 (depth + 1) - 1) / (d - 1)
  in
  almost_complete_dary ~d size

let double_star a b =
  if a < 0 || b < 0 then invalid_arg "Gen.double_star: negative leaf count";
  let n = a + b + 2 in
  let g = ref (Graph.add_edge (Graph.create n) 0 1) in
  for i = 0 to a - 1 do
    g := Graph.add_edge !g 0 (2 + i)
  done;
  for i = 0 to b - 1 do
    g := Graph.add_edge !g 1 (2 + a + i)
  done;
  !g

let broom ~handle ~bristles =
  if handle < 1 || bristles < 0 then invalid_arg "Gen.broom: bad parameters";
  let n = handle + bristles in
  let g = ref (path handle) in
  let g' = ref (Graph.create n) in
  List.iter (fun (u, v) -> g' := Graph.add_edge !g' u v) (Graph.edges !g);
  for i = 0 to bristles - 1 do
    g' := Graph.add_edge !g' (handle - 1) (handle + i)
  done;
  !g'

let spider ~legs ~leg_len =
  if legs < 0 || leg_len < 1 then invalid_arg "Gen.spider: bad parameters";
  let n = 1 + (legs * leg_len) in
  let g = ref (Graph.create n) in
  for l = 0 to legs - 1 do
    let first = 1 + (l * leg_len) in
    g := Graph.add_edge !g 0 first;
    for i = 1 to leg_len - 1 do
      g := Graph.add_edge !g (first + i - 1) (first + i)
    done
  done;
  !g

let of_parents parent =
  let n = Array.length parent in
  if n = 0 then Graph.create 0
  else begin
    if parent.(0) <> -1 then invalid_arg "Gen.of_parents: parent.(0) must be -1";
    let g = ref (Graph.create n) in
    for v = 1 to n - 1 do
      let p = parent.(v) in
      if p < 0 || p >= n || p = v then invalid_arg "Gen.of_parents: bad parent";
      g := Graph.add_edge !g v p
    done;
    if not (Tree.is_tree !g) then invalid_arg "Gen.of_parents: not a tree";
    !g
  end

let preferential_attachment rng n ~m =
  if m < 1 || n < 1 then invalid_arg "Gen.preferential_attachment: bad parameters";
  (* degree-proportional sampling via a repeated-endpoints urn *)
  let urn = ref [] and g = ref (Graph.create n) in
  for v = 1 to n - 1 do
    let targets = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length targets < min m v && !attempts < 50 * m do
      incr attempts;
      let t =
        match !urn with
        | [] -> Random.State.int rng v
        | urn_list ->
            if Random.State.bool rng then Random.State.int rng v
            else List.nth urn_list (Random.State.int rng (List.length urn_list))
      in
      if t < v then Hashtbl.replace targets t ()
    done;
    if Hashtbl.length targets = 0 then Hashtbl.replace targets (Random.State.int rng v) ();
    Hashtbl.iter
      (fun t () ->
        g := Graph.add_edge !g v t;
        urn := v :: t :: !urn)
      targets
  done;
  !g

(* Decode a Prüfer sequence of length n-2 into a labelled tree.  The scan
   for the smallest leaf is quadratic, which is fine at the sizes random
   trees are used at. *)
let of_pruefer code =
  let k = Array.length code in
  let n = k + 2 in
  let deg = Array.make n 1 in
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) code;
  let g = ref (Graph.create n) in
  let smallest_leaf () =
    let leaf = ref 0 in
    while deg.(!leaf) <> 1 do
      incr leaf
    done;
    !leaf
  in
  Array.iter
    (fun v ->
      let leaf = smallest_leaf () in
      g := Graph.add_edge !g leaf v;
      deg.(leaf) <- 0;
      deg.(v) <- deg.(v) - 1)
    code;
  let u = smallest_leaf () in
  deg.(u) <- 0;
  let v = smallest_leaf () in
  Graph.add_edge !g u v

let random_tree rng n =
  if n <= 0 then Graph.create (max n 0)
  else if n = 1 then Graph.create 1
  else if n = 2 then Graph.add_edge (Graph.create 2) 0 1
  else of_pruefer (Array.init (n - 2) (fun _ -> Random.State.int rng n))

let random_connected rng n ~p =
  let g = ref (random_tree rng n) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Graph.has_edge !g u v)) && Random.State.float rng 1.0 < p then
        g := Graph.add_edge !g u v
    done
  done;
  !g
