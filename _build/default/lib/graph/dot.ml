type edge_style = Solid | Dashed | Dotted

let style_attr = function
  | Solid -> "solid"
  | Dashed -> "dashed"
  | Dotted -> "dotted"

let norm (u, v) = if u <= v then (u, v) else (v, u)

let to_dot ?(name = "G") ?labels ?(highlight_nodes = []) ?(styled_edges = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for u = 0 to Graph.n g - 1 do
    let label = match labels with Some f -> f u | None -> string_of_int u in
    let extra =
      if List.mem u highlight_nodes then ", style=filled, fillcolor=\"#ff8888\"" else ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" u label extra)
  done;
  let styled = List.map (fun (e, s, c) -> (norm e, (s, c))) styled_edges in
  List.iter
    (fun (u, v) ->
      match List.assoc_opt (norm (u, v)) styled with
      | Some (s, c) ->
          Buffer.add_string buf
            (Printf.sprintf "  %d -- %d [style=%s, color=\"%s\"];\n" u v (style_attr s) c)
      | None -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (Graph.edges g);
  (* styled edges that are not part of the graph (e.g. proposed additions) *)
  List.iter
    (fun ((u, v), (s, c)) ->
      if not (Graph.has_edge g u v) then
        Buffer.add_string buf
          (Printf.sprintf "  %d -- %d [style=%s, color=\"%s\"];\n" u v (style_attr s) c))
    styled;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
