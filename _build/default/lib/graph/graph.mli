(** Immutable undirected simple graphs on the vertex set [0 .. n-1].

    This is the hand-rolled sparse-graph substrate of the reproduction: all
    game states of the (Bilateral) Network Creation Game are values of
    {!type:t}.  The representation is an array of sorted adjacency rows;
    edge insertion and removal are persistent (they copy only the two
    affected rows), so checkers can explore candidate moves without
    mutating the state under scrutiny. *)

type t
(** An undirected simple graph.  Values are immutable. *)

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val n : t -> int
(** [n g] is the number of vertices of [g]. *)

val num_edges : t -> int
(** [num_edges g] is the number of (undirected) edges of [g]. *)

val mem_vertex : t -> int -> bool
(** [mem_vertex g u] is [true] iff [0 <= u < n g]. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] is [true] iff the edge [uv] is present.  Symmetric in
    [u] and [v]; [has_edge g u u] is always [false]. *)

val add_edge : t -> int -> int -> t
(** [add_edge g u v] is [g] with edge [uv] added.  Returns [g] unchanged
    (physically equal) if the edge is already present.
    @raise Invalid_argument if [u = v] or either endpoint is out of range. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without edge [uv].  Returns [g] unchanged
    (physically equal) if the edge is absent.
    @raise Invalid_argument if either endpoint is out of range. *)

val add_edges : t -> (int * int) list -> t
(** [add_edges g es] adds every edge of [es]; duplicates are ignored. *)

val remove_edges : t -> (int * int) list -> t
(** [remove_edges g es] removes every edge of [es]; absent edges ignored. *)

val apply : t -> add:(int * int) list -> remove:(int * int) list -> t
(** [apply g ~add ~remove] removes then adds.  Edges in both lists end up
    present. *)

val neighbors : t -> int -> int array
(** [neighbors g u] is the sorted array of neighbours of [u].  The returned
    array is the internal row and must not be mutated. *)

val degree : t -> int -> int
(** [degree g u] is the number of neighbours of [u]. *)

val max_degree : t -> int
(** [max_degree g] is the maximum vertex degree ([0] for an empty graph). *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f g u] applies [f] to each neighbour of [u] in
    increasing order. *)

val fold_neighbors : ('a -> int -> 'a) -> 'a -> t -> int -> 'a
(** [fold_neighbors f init g u] folds [f] over the neighbours of [u]. *)

val edges : t -> (int * int) list
(** [edges g] is the list of edges [(u, v)] with [u < v], sorted
    lexicographically. *)

val non_edges : t -> (int * int) list
(** [non_edges g] is the list of vertex pairs [(u, v)], [u < v], that are
    not edges of [g]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n es] is the graph on [n] vertices with edge set [es].
    Duplicate edges are ignored.
    @raise Invalid_argument on loops or out-of-range endpoints. *)

val equal : t -> t -> bool
(** Structural equality of vertex count and edge sets (same labelling). *)

val compare : t -> t -> int
(** A total order consistent with {!equal}. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [u] to [perm.(u)].
    @raise Invalid_argument if [perm] is not a permutation of [0 .. n-1]. *)

val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by the distinct vertices [vs],
    relabelled to [0 .. Array.length vs - 1] in the order given. *)

val disjoint_union : t -> t -> t
(** [disjoint_union g h] places [h] next to [g], shifting the labels of [h]
    by [n g]. *)

val complement : t -> t
(** [complement g] has exactly the edges missing from [g]. *)

val is_clique : t -> bool
(** [is_clique g] is [true] iff every vertex pair is an edge. *)

val adjacency_key : t -> string
(** [adjacency_key g] is a compact string determined exactly by
    ([n g], edge set); usable as a hash-table key for labelled graphs. *)

val pp : Format.formatter -> t -> unit
(** Prints as [n=<n> edges=[(u,v); ...]]. *)

val to_string : t -> string
(** [to_string g] is [Format.asprintf "%a" pp g]. *)
