type failure = { sub : Concept.t; sup : Concept.t; graph : Graph.t; f_alpha : float }
type report = { instances : int; skipped : int; failures : failure list }

let default_alphas = [ 0.5; 1.0; 1.5; 2.0; 3.0; 5.0; 9.0; 20.0; 100.0 ]

let verify_arrows ?budget ~graphs ~alphas arrows =
  let instances = ref 0 and skipped = ref 0 and failures = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun alpha ->
          (* Cache verdicts per concept for this (g, α). *)
          let cache = Hashtbl.create 8 in
          let verdict c =
            match Hashtbl.find_opt cache (Concept.name c) with
            | Some v -> v
            | None ->
                let v = Concept.check ?budget ~alpha c g in
                Hashtbl.add cache (Concept.name c) v;
                v
          in
          List.iter
            (fun (sub, sup) ->
              match (verdict sub, verdict sup) with
              | Verdict.Exhausted _, _ | _, Verdict.Exhausted _ -> incr skipped
              | Verdict.Stable, Verdict.Unstable _ ->
                  incr instances;
                  failures := { sub; sup; graph = g; f_alpha = alpha } :: !failures
              | (Verdict.Stable | Verdict.Unstable _), _ -> incr instances)
            arrows)
        alphas)
    graphs;
  { instances = !instances; skipped = !skipped; failures = List.rev !failures }
