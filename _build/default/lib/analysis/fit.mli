(** Tiny least-squares fitting, for quantifying the *shape* of measured
    PoA curves: the paper claims Θ(√α) / Θ(log α) / Θ(1) growth, so the
    harness fits measured ρ against those forms and reports goodness of
    fit instead of eyeballing ratios. *)

type line = { slope : float; intercept : float; r2 : float }

val linear : (float * float) list -> line
(** [linear points] is the least-squares line through [(x, y)] points.
    [r2] is the coefficient of determination (1 when all points are on
    the line; 0 or less when the fit explains nothing).
    @raise Invalid_argument with fewer than 2 points. *)

val power_exponent : (float * float) list -> line
(** [power_exponent points] fits [y = c·x^s] by regressing [log y] on
    [log x]: the returned [slope] is the measured growth exponent
    (≈ 0.5 for a √α law, ≈ 0 for polylogarithmic growth).  Points with
    non-positive coordinates are dropped. *)

val log_fit : (float * float) list -> line
(** [log_fit points] fits [y = a·log₂ x + b] — the Θ(log α) shape. *)
