(** Aligned text tables for the experiment harness — no dependency beyond
    [Format], so examples, bench and the CLI all print consistently. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] renders an aligned, ruled text table. *)

val print_table : header:string list -> string list list -> unit
(** {!table} to stdout. *)

val fnum : float -> string
(** Compact float: integers print bare, otherwise 2 decimals, [inf] as
    ["inf"]. *)

val csv : header:string list -> string list list -> string
(** The same data as comma-separated values. *)

val section : string -> unit
(** Print an underlined section heading. *)
