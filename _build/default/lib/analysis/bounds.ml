let log2 x = Float.log x /. Float.log 2.

let prop31_upper ~alpha ~n ~dist_u =
  (alpha +. float_of_int dist_u) /. (alpha +. float_of_int (n - 1))

let cor32_upper ~alpha ~n = 1. +. (float_of_int (n * n) /. alpha)

let lemma_b1_social_upper ~alpha ~n ~dist_u =
  2. *. float_of_int (n - 1) *. (alpha +. float_of_int dist_u)

let ps_shape ~alpha ~n =
  let s = Float.sqrt alpha in
  Float.min s (float_of_int n /. s)

let thm36_bswe_upper ~alpha = 2. +. (2. *. log2 alpha)
let thm310_bge_lower ~alpha = (log2 alpha /. 4.) -. (17. /. 8.)

let thm312i_bne_lower ~alpha ~epsilon = (epsilon /. 168. *. log2 alpha) -. (3. /. 28.)
let thm312ii_bne_lower ~alpha ~epsilon = (epsilon /. 4. *. log2 alpha) -. (9. /. 8.)

let thm313_bne_upper = 4.
let thm315_3bse_upper = 25.

let lemma314_depth_threshold ~alpha ~n =
  (2 * int_of_float (Float.ceil (4. *. alpha /. float_of_int n))) + 1

let lemma318_agent_cost ~d ~alpha ~n =
  let logd = Float.log (float_of_int n) /. Float.log (float_of_int d) in
  (float_of_int (d + 1) *. alpha) +. (2. *. float_of_int (n - 1) *. logd)

let lemma317_poa_upper ~alpha ~n ~max_cost = max_cost /. (alpha +. float_of_int (n - 1))

let thm319_bse_upper = 5.
let thm320_bse_upper ~epsilon = 3. +. (2. /. epsilon)

let thm321_bse_upper ~n =
  let nf = float_of_int n in
  let lll = log2 (log2 (log2 nf)) in
  2. +. log2 (log2 nf) +. (2. *. log2 nf /. lll)

let lemma311_premise ~alpha ~n ~depth ~subtree =
  let d = float_of_int depth and t = float_of_int subtree in
  (3. *. float_of_int n *. d /. alpha) +. 1. <= alpha /. (3. *. t *. d)

let lemma24_alpha_range n = Cycle.bse_alpha_range n

let lemma_d10_star_rho_lower ~n ~k ~t ~alpha =
  float_of_int (n * k)
  *. (log2 (t /. float_of_int k) -. 4.5)
  /. (2. *. (alpha +. float_of_int (n - 1)))
