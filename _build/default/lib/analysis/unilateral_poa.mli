(** Unilateral-vs-bilateral comparison (the paper's motivation).

    The introduction contrasts the NCG — PoA constant for most α — with
    the BNCG under PS — PoA Θ(min(√α, n/√α)).  This module certifies that
    contrast at small sizes: the worst Nash equilibrium of the unilateral
    NCG over all labelled trees and ownerships, next to the worst pairwise
    stable tree of the bilateral game. *)

type worst = {
  rho : float;  (** worst social cost ratio among certified equilibria *)
  count : int;  (** how many (graph, ownership) equilibria were found *)
  checked : int;  (** how many candidates were examined *)
}

val worst_ne_tree : alpha:float -> int -> worst
(** [worst_ne_tree ~alpha n] maximises the social cost ratio over all
    trees on [n] vertices (one representative per isomorphism class) and
    all edge ownerships that form an exact Nash equilibrium of the
    unilateral NCG.  The social cost uses the unilateral accounting (each
    edge paid once).
    @raise Invalid_argument if [n > 7]. *)

val unilateral_rho : alpha:float -> Graph.t -> float
(** [unilateral_rho ~alpha g] is the unilateral social cost ratio of [g]:
    [(α m + Σ_u dist(u)) / opt], with the unilateral optimum
    [(n-1)α + 2(n-1)(n-2)/... ] — i.e. cost of the star with each edge
    paid once ([α ≥ 1]; for [α < 1] the clique).  [infinity] when
    disconnected. *)

val compare_table : alphas:float list -> n:int -> (float * float * float) list
(** [compare_table ~alphas ~n] pairs, for each α, the unilateral worst NE
    ratio with the bilateral worst PS ratio over trees:
    [(α, rho_NCG, rho_BNCG)]. *)
