(** Stability profiles across the edge price.

    Stability is {e not} monotone in α (Lemma 2.4's cycles are stable only
    inside an α window), so a profile is a set of intervals, recovered
    from a grid scan plus bisection refinement of each boundary. *)

type interval = { lo : float; hi : float }
(** A maximal stable interval found by the scan; [lo]/[hi] are accurate to
    the bisection tolerance. *)

type profile = {
  intervals : interval list;  (** disjoint, increasing *)
  undecided : int;  (** grid points where the checker was budgeted out *)
}

val scan :
  ?budget:int ->
  ?tolerance:float ->
  concept:Concept.t ->
  grid:float list ->
  Graph.t ->
  profile
(** [scan ~concept ~grid g] classifies each grid point and bisects every
    stability flip between adjacent grid points down to [tolerance]
    (default [1e-3]).  Boundaries between a decided and an undecided point
    are not refined.  The grid must be sorted increasing. *)

val covers : profile -> float -> bool
(** [covers p alpha] is [true] iff some interval contains [alpha]. *)

val pp : Format.formatter -> profile -> unit
