(** The paper's closed-form PoA bounds as executable formulas (base-2
    logarithms throughout, as in the paper).

    The experiment harness prints these next to measured ρ values so that
    every theorem's compliance (upper bounds) and tightness (lower bounds)
    is visible in one table. *)

val log2 : float -> float

val prop31_upper : alpha:float -> n:int -> dist_u:int -> float
(** Proposition 3.1: ρ(G) ≤ (α + dist(u)) / (α + n − 1) for connected RE
    and any vertex [u]. *)

val cor32_upper : alpha:float -> n:int -> float
(** Corollary 3.2: ρ(G) ≤ 1 + n²/α. *)

val lemma_b1_social_upper : alpha:float -> n:int -> dist_u:int -> float
(** Lemma B.1: a connected RE graph has social cost at most
    [2 (n−1) (α + dist(u))] for any vertex [u]. *)

val ps_shape : alpha:float -> n:int -> float
(** The PS PoA shape Θ(min √α, n/√α) (Corbo–Parkes / Demaine et al.),
    as the representative function min(√α, n/√α). *)

val thm36_bswe_upper : alpha:float -> float
(** Theorem 3.6: trees in BSwE have ρ ≤ 2 + 2 log α. *)

val thm310_bge_lower : alpha:float -> float
(** Theorem 3.10: a BGE tree with ρ ≥ (log α)/4 − 17/8 exists. *)

val thm312i_bne_lower : alpha:float -> epsilon:float -> float
(** Theorem 3.12 (i): ρ ≥ (ε/168) log α − 3/28. *)

val thm312ii_bne_lower : alpha:float -> epsilon:float -> float
(** Theorem 3.12 (ii): ρ ≥ (ε/4) log α − 9/8. *)

val thm313_bne_upper : float
(** Theorem 3.13: trees in BNE with α ≤ √n (n > 15) have ρ ≤ 4. *)

val thm315_3bse_upper : float
(** Theorem 3.15: trees in 3-BSE have ρ ≤ 25. *)

val lemma314_depth_threshold : alpha:float -> n:int -> int
(** Lemma 3.14: in a 3-BSE tree, at most one child subtree per vertex is
    deeper than [2⌈4α/n⌉ + 1]. *)

val lemma318_agent_cost : d:int -> alpha:float -> n:int -> float
(** Lemma 3.18: every agent of an almost complete d-ary tree has cost at
    most [(d+1)α + 2(n−1) log_d n]. *)

val lemma317_poa_upper : alpha:float -> n:int -> max_cost:float -> float
(** Lemma 3.17: any BSE has ρ ≤ max-agent-cost / (α + n − 1). *)

val thm319_bse_upper : float
(** Theorem 3.19: BSE with α ≥ n log n has ρ ≤ 5. *)

val thm320_bse_upper : epsilon:float -> float
(** Theorem 3.20: BSE with α ≤ n^{1−ε} has ρ ≤ 3 + 2/ε. *)

val thm321_bse_upper : n:int -> float
(** Theorem 3.21: BSE has ρ ≤ 2 + log log n + 2 log n / log log log n. *)

val lemma311_premise : alpha:float -> n:int -> depth:int -> subtree:int -> bool
(** Lemma 3.11's sufficient condition for a stretched tree star to be in
    BNE: [3 n depth / α + 1 ≤ α / (3 |T| depth)].  Used to assert
    (theory-backed) BNE stability at scales the exact checker cannot
    reach. *)

val lemma24_alpha_range : int -> float * float
(** Lemma 2.4: the α interval for which C_n is in BSE
    (same as {!Cycle.bse_alpha_range}). *)

val lemma_d10_star_rho_lower : n:int -> k:int -> t:float -> alpha:float -> float
(** Lemma D.10: ρ(G) ≥ n k (log(t/k) − 9/2) / (2 (α + n − 1)) for a
    stretched tree star. *)
