(** Welfare decomposition and fairness statistics of a network state.

    Proposition 3.22 turns on how evenly cost can be spread across agents;
    this module measures that spread (and the buy/distance split) for any
    graph, feeding the α = n experiments and the examples. *)

type t = {
  agents : int;
  social : float;  (** finite social cost *)
  buy_share : float;  (** fraction of the social cost that is buying cost *)
  min_cost : float;
  max_cost : float;
  mean_cost : float;
  spread : float;  (** max / mean — 1 for perfectly even graphs *)
  gini : float;  (** Gini coefficient of the agent cost distribution *)
}

val analyze : alpha:float -> Graph.t -> t
(** [analyze ~alpha g] computes the statistics; requires [g] connected.
    @raise Invalid_argument if [g] is disconnected or has no agents. *)

val normalized_max_cost : alpha:float -> Graph.t -> float
(** [normalized_max_cost ~alpha g] is the paper's Proposition 3.22
    quantity [max_u cost(u) / (α + n − 1)]. *)

val pp : Format.formatter -> t -> unit
