(** Structural consequences of stability — the quantities the PoA proofs
    run on, measurable on any graph.

    These power the theorem-audit experiments: every certified equilibrium
    must satisfy the structural lemma that drives its PoA bound. *)

val bae_diameter_bound : alpha:float -> float
(** Graphs in (B)AE have diameter at most [2 sqrt(alpha) + 1] (Fabrikant
    et al., carried over to the BNCG in Appendix B). *)

val check_bae_diameter : alpha:float -> Graph.t -> bool
(** [check_bae_diameter ~alpha g] is [true] iff [g]'s diameter respects
    {!bae_diameter_bound} (vacuously true when disconnected). *)

val bswe_subtree_size_bound : alpha:float -> n:int -> layer:int -> float
(** Lemma 3.5: in a BSwE tree rooted at a 1-median, a vertex at layer
    [ℓ ≥ 2] has subtree size at most [α / (ℓ − 1)]. *)

val check_bswe_subtree_sizes : alpha:float -> Graph.t -> bool
(** Audits Lemma 3.5 on a tree (rooted at its 1-median).
    @raise Invalid_argument if the graph is not a tree. *)

val bswe_depth_bound : alpha:float -> n:int -> subtree:int -> float
(** Lemma 3.4: [depth(T_u) ≤ (1 + 2α/n) log |T_u|]. *)

val check_bswe_depths : alpha:float -> Graph.t -> bool
(** Audits Lemma 3.4 on a tree rooted at its 1-median. *)

val check_lemma_314 : alpha:float -> Graph.t -> bool
(** Audits Lemma 3.14 on a tree rooted at its 1-median: every vertex has
    at most one child subtree deeper than [2⌈4α/n⌉ + 1]. *)
