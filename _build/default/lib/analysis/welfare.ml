type t = {
  agents : int;
  social : float;
  buy_share : float;
  min_cost : float;
  max_cost : float;
  mean_cost : float;
  spread : float;
  gini : float;
}

let analyze ~alpha g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Welfare.analyze: empty graph";
  if not (Paths.is_connected g) then invalid_arg "Welfare.analyze: disconnected graph";
  let costs = Array.init n (fun u -> Cost.money (Cost.agent_cost ~alpha g u)) in
  let social = Array.fold_left ( +. ) 0. costs in
  let buy = 2. *. alpha *. float_of_int (Graph.num_edges g) in
  let min_cost = Array.fold_left Float.min costs.(0) costs in
  let max_cost = Array.fold_left Float.max costs.(0) costs in
  let mean_cost = social /. float_of_int n in
  (* Gini via the sorted-rank formula. *)
  let sorted = Array.copy costs in
  Array.sort Float.compare sorted;
  let weighted = ref 0. in
  Array.iteri (fun i c -> weighted := !weighted +. (float_of_int (i + 1) *. c)) sorted;
  let nf = float_of_int n in
  let gini =
    if social <= 0. then 0.
    else ((2. *. !weighted) /. (nf *. social)) -. ((nf +. 1.) /. nf)
  in
  {
    agents = n;
    social;
    buy_share = (if social <= 0. then 0. else buy /. social);
    min_cost;
    max_cost;
    mean_cost;
    spread = (if mean_cost <= 0. then 1. else max_cost /. mean_cost);
    gini;
  }

let normalized_max_cost ~alpha g =
  let stats = analyze ~alpha g in
  stats.max_cost /. (alpha +. float_of_int (Graph.n g - 1))

let pp ppf t =
  Format.fprintf ppf
    "agents=%d social=%.1f buy-share=%.2f cost[min=%.1f mean=%.1f max=%.1f] spread=%.2f \
     gini=%.3f"
    t.agents t.social t.buy_share t.min_cost t.mean_cost t.max_cost t.spread t.gini
