type weighted = { move : Move.t; social_delta : float; mover_delta : float }

let finite_social ~alpha g = Cost.social_money (Cost.social_cost ~alpha g)

let weigh ~alpha g m =
  let g' = Move.apply g m in
  let social_delta = finite_social ~alpha g' -. finite_social ~alpha g in
  let mover_delta =
    List.fold_left
      (fun acc u ->
        acc
        +. Cost.money (Cost.agent_cost ~alpha g' u)
        -. Cost.money (Cost.agent_cost ~alpha g u))
      0. (Move.participants m)
  in
  { move = m; social_delta; mover_delta }

let improving_removals ~alpha g =
  List.concat_map
    (fun (u, v) ->
      List.filter_map
        (fun (agent, target) ->
          let m = Move.Remove { agent; target } in
          if Move.is_improving ~alpha g m then Some (weigh ~alpha g m) else None)
        [ (u, v); (v, u) ])
    (Graph.edges g)

let improving_additions ~alpha g =
  List.filter_map
    (fun (u, v) ->
      let m = Move.Bilateral_add { u; v } in
      if Move.is_improving ~alpha g m then Some (weigh ~alpha g m) else None)
    (Graph.non_edges g)

let improving_swaps ~alpha g =
  let size = Graph.n g in
  let out = ref [] in
  for u = 0 to size - 1 do
    Array.iter
      (fun v ->
        for w = 0 to size - 1 do
          if w <> u && w <> v && not (Graph.has_edge g u w) then begin
            let m = Move.Bilateral_swap { u; drop = v; add = w } in
            if Move.is_improving ~alpha g m then out := weigh ~alpha g m :: !out
          end
        done)
      (Graph.neighbors g u)
  done;
  List.rev !out

let improving ~concept ~alpha g =
  match concept with
  | Concept.RE -> improving_removals ~alpha g
  | Concept.BAE -> improving_additions ~alpha g
  | Concept.PS -> improving_removals ~alpha g @ improving_additions ~alpha g
  | Concept.BSwE -> improving_swaps ~alpha g
  | Concept.BGE ->
      improving_removals ~alpha g @ improving_additions ~alpha g @ improving_swaps ~alpha g
  | Concept.BNE | Concept.KBSE _ | Concept.BSE ->
      invalid_arg "Local_moves.improving: not a local concept"

type policy = First | Best_response | Best_social | Random of Random.State.t

let pick policy moves =
  match moves with
  | [] -> None
  | first :: _ -> (
      match policy with
      | First -> Some first
      | Best_response ->
          Some
            (List.fold_left
               (fun best m -> if m.mover_delta < best.mover_delta then m else best)
               first moves)
      | Best_social ->
          Some
            (List.fold_left
               (fun best m -> if m.social_delta < best.social_delta then m else best)
               first moves)
      | Random rng -> Some (List.nth moves (Random.State.int rng (List.length moves))))

let run_dynamics ?(max_steps = 10_000) ~policy ~concept ~alpha g0 =
  let seen = Hashtbl.create 64 in
  let rec go g steps trace =
    Hashtbl.replace seen (Graph.adjacency_key g) ();
    if steps >= max_steps then
      { Dynamics.final = g; status = Dynamics.Max_steps; steps; rho_trace = List.rev trace }
    else
      match pick policy (improving ~concept ~alpha g) with
      | None ->
          { Dynamics.final = g; status = Dynamics.Converged; steps; rho_trace = List.rev trace }
      | Some { move; _ } ->
          let g' = Move.apply g move in
          if Hashtbl.mem seen (Graph.adjacency_key g') then
            {
              Dynamics.final = g';
              status = Dynamics.Cycled;
              steps = steps + 1;
              rho_trace = List.rev trace;
            }
          else go g' (steps + 1) (Cost.rho ~alpha g' :: trace)
  in
  go g0 0 [ Cost.rho ~alpha g0 ]
