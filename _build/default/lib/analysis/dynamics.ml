type status = Converged | Cycled | Max_steps | Budget_exhausted

type run = { final : Graph.t; status : status; steps : int; rho_trace : float list }

let status_to_string = function
  | Converged -> "converged"
  | Cycled -> "cycled"
  | Max_steps -> "max-steps"
  | Budget_exhausted -> "budget-exhausted"

let run ?(max_steps = 10_000) ?budget ~concept ~alpha g0 =
  let seen = Hashtbl.create 64 in
  let rec go g steps trace =
    Hashtbl.replace seen (Graph.adjacency_key g) ();
    if steps >= max_steps then { final = g; status = Max_steps; steps; rho_trace = List.rev trace }
    else
      match Concept.check ?budget ~alpha concept g with
      | Verdict.Stable -> { final = g; status = Converged; steps; rho_trace = List.rev trace }
      | Verdict.Exhausted _ ->
          { final = g; status = Budget_exhausted; steps; rho_trace = List.rev trace }
      | Verdict.Unstable m ->
          let g' = Move.apply g m in
          if Hashtbl.mem seen (Graph.adjacency_key g') then
            { final = g'; status = Cycled; steps = steps + 1; rho_trace = List.rev trace }
          else go g' (steps + 1) (Cost.rho ~alpha g' :: trace)
  in
  go g0 0 [ Cost.rho ~alpha g0 ]
