(** Empirical verification of the subset diagram (Figure 1a).

    For every claimed arrow (subset concept → superset concept) and every
    enumerated instance, a graph certified stable for the subset concept
    must also be certified stable for the superset concept.  Budget-limited
    ([Exhausted]) checks are skipped and counted. *)

type failure = {
  sub : Concept.t;
  sup : Concept.t;
  graph : Graph.t;
  f_alpha : float;
}
(** A graph stable for [sub] but unstable for [sup] — which would
    contradict the paper's diagram. *)

type report = {
  instances : int;  (** (graph, α, arrow) triples decided exactly *)
  skipped : int;  (** triples skipped because a check was budgeted out *)
  failures : failure list;
}

val verify_arrows :
  ?budget:int ->
  graphs:Graph.t list ->
  alphas:float list ->
  (Concept.t * Concept.t) list ->
  report
(** [verify_arrows ~graphs ~alphas arrows] exhaustively tests every arrow
    on every (graph, α). *)

val default_alphas : float list
(** A grid covering the regimes the paper distinguishes:
    α < 1, α = 1, 1 < α < √n-ish, α ≈ n, α ≫ n. *)
