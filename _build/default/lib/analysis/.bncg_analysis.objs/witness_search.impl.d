lib/analysis/witness_search.ml: Concept Float Gen Graph List Paths Random Verdict
