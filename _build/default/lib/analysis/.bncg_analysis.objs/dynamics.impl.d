lib/analysis/dynamics.ml: Concept Cost Graph Hashtbl List Move Verdict
