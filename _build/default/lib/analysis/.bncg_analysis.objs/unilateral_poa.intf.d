lib/analysis/unilateral_poa.mli: Graph
