lib/analysis/report.ml: Float List Option Printf String
