lib/analysis/alpha_profile.ml: Concept Float Format List Printf Verdict
