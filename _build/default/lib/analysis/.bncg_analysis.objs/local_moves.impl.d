lib/analysis/local_moves.ml: Array Concept Cost Dynamics Graph Hashtbl List Move Random
