lib/analysis/dynamics.mli: Concept Graph
