lib/analysis/relations.ml: Concept Graph Hashtbl List Verdict
