lib/analysis/structure.ml: Array Float Graph List Paths Tree
