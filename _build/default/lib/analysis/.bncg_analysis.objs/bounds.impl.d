lib/analysis/bounds.ml: Cycle Float
