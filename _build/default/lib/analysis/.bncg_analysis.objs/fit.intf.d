lib/analysis/fit.mli:
