lib/analysis/viz.mli: Counterexamples Graph Move
