lib/analysis/report.mli:
