lib/analysis/bounds.mli:
