lib/analysis/viz.ml: Array Counterexamples Dot List Move String
