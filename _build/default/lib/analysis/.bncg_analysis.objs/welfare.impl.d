lib/analysis/welfare.ml: Array Cost Float Format Graph Paths
