lib/analysis/alpha_profile.mli: Concept Format Graph
