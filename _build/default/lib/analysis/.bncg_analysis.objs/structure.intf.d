lib/analysis/structure.mli: Graph
