lib/analysis/fit.ml: Float List
