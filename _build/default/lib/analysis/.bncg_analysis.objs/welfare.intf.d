lib/analysis/welfare.mli: Format Graph
