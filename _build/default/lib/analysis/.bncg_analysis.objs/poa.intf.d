lib/analysis/poa.mli: Concept Graph
