lib/analysis/poa.ml: Concept Cost Enumerate Graph List Verdict
