lib/analysis/local_moves.mli: Concept Dynamics Graph Move Random
