lib/analysis/witness_search.mli: Concept Graph Random
