lib/analysis/relations.mli: Concept Graph
