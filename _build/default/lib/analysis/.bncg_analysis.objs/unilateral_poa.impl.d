lib/analysis/unilateral_poa.ml: Concept Cost Enumerate Float Graph List Poa Strategy Unilateral
