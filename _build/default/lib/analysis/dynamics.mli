(** Improving-move dynamics: repeatedly apply an improving move of the
    given solution concept until none is left.

    The checkers double as move oracles (an [Unstable] verdict carries a
    concrete improving move), so dynamics under PS, BGE, BNE or k-BSE all
    share one engine.  Convergence of such dynamics is not guaranteed in
    general (Kawald–Lenzner study this for the unilateral game); the
    engine therefore detects revisited states and stops. *)

type status =
  | Converged  (** reached a certified equilibrium *)
  | Cycled  (** revisited a previously seen graph *)
  | Max_steps  (** step limit hit *)
  | Budget_exhausted  (** a checker could not certify stability *)

type run = {
  final : Graph.t;
  status : status;
  steps : int;
  rho_trace : float list;  (** ρ after each step, oldest first *)
}

val run :
  ?max_steps:int ->
  ?budget:int ->
  concept:Concept.t ->
  alpha:float ->
  Graph.t ->
  run
(** [run ~concept ~alpha g] applies the first improving move found by the
    concept's checker until stability, a cycle, or the step limit
    (default 10_000). *)

val status_to_string : status -> string
