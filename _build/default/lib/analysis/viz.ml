let edges_of_move g = function
  | Move.Remove { agent; target } -> ([ (agent, target) ], [])
  | Move.Bilateral_add { u; v } -> ([], [ (u, v) ])
  | Move.Bilateral_swap { u; drop; add } -> ([ (u, drop) ], [ (u, add) ])
  | Move.Neighborhood { agent; drop; add } ->
      (List.map (fun v -> (agent, v)) drop, List.map (fun v -> (agent, v)) add)
  | Move.Coalition { remove; add; _ } ->
      ignore g;
      (remove, add)

let move_overlay ?labels g m =
  let removed, added = edges_of_move g m in
  let styled =
    List.map (fun e -> (e, Dot.Dotted, "#999999")) removed
    @ List.map (fun e -> (e, Dot.Dashed, "#cc0000")) added
  in
  Dot.to_dot ?labels ~highlight_nodes:(Move.participants m) ~styled_edges:styled g

let case_to_dot (c : Counterexamples.case) =
  match c.Counterexamples.unstable with
  | (_, m) :: _ ->
      let labels =
        if String.equal c.Counterexamples.name "figure6" then
          Some (fun u -> Counterexamples.figure6_vertex_names.(u))
        else None
      in
      move_overlay ?labels c.Counterexamples.graph m
  | [] -> Dot.to_dot c.Counterexamples.graph
