type line = { slope : float; intercept : float; r2 : float }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  let slope = if denom = 0. then 0. else ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.)) 0. points in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let p = (slope *. x) +. intercept in
        a +. ((y -. p) ** 2.))
      0. points
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let power_exponent points =
  points
  |> List.filter (fun (x, y) -> x > 0. && y > 0.)
  |> List.map (fun (x, y) -> (Float.log x, Float.log y))
  |> linear

let log_fit points =
  points
  |> List.filter (fun (x, _) -> x > 0.)
  |> List.map (fun (x, y) -> (Float.log x /. Float.log 2., y))
  |> linear
