type worst = { rho : float; count : int; checked : int }

(* Unilateral social optimum: every edge is paid once, so the star costs
   (n-1)alpha + 2(n-1)^2 - 2(n-1) + ... = (n-1)alpha + 2(n-1)(n-1);
   distances are as in the bilateral game.  For alpha < 2 the clique
   competes; the classic NCG threshold is alpha = 2.  We take the min of
   star and clique costs, which is the optimum for all alpha (Fabrikant
   et al.). *)
let unilateral_opt ~alpha n =
  if n <= 1 then 0.
  else
    let nf = float_of_int n in
    let star = ((nf -. 1.) *. alpha) +. (2. *. (nf -. 1.) *. (nf -. 1.)) in
    let clique = (nf *. (nf -. 1.) /. 2. *. alpha) +. (nf *. (nf -. 1.)) in
    Float.min star clique

let unilateral_social_cost ~alpha g =
  let s = Cost.social_cost ~alpha g in
  if s.Cost.disconnected_pairs > 0 then Float.infinity
  else
    (* social_buy counts both endpoints; unilaterally each edge is paid
       once *)
    (s.Cost.social_buy /. 2.) +. float_of_int s.Cost.social_dist

let unilateral_rho ~alpha g =
  let n = Graph.n g in
  if n <= 1 then 1. else unilateral_social_cost ~alpha g /. unilateral_opt ~alpha n

let worst_ne_tree ~alpha n =
  if n > 7 then invalid_arg "Unilateral_poa.worst_ne_tree: n > 7";
  let rho = ref 0. and count = ref 0 and checked = ref 0 in
  (* One representative per isomorphism class suffices: the ratio is
     isomorphism-invariant and ownerships are enumerated exhaustively. *)
  List.iter
    (fun g ->
      (* Cheap necessary condition first: a NE graph is in unilateral AE
         regardless of ownership. *)
      if Unilateral.is_add_eq ~alpha g = Ok () then
        List.iter
          (fun assignment ->
            incr checked;
            if Unilateral.is_nash ~alpha assignment = Ok () then begin
              incr count;
              let r = unilateral_rho ~alpha g in
              if r > !rho then rho := r
            end)
          (Strategy.all_assignments g)
      else incr checked)
    (Enumerate.free_trees n);
  { rho = !rho; count = !count; checked = !checked }

let compare_table ~alphas ~n =
  List.map
    (fun alpha ->
      let uni = worst_ne_tree ~alpha n in
      let bi = Poa.worst_tree ~concept:Concept.PS ~alpha n in
      (alpha, uni.rho, bi.Poa.rho))
    alphas
