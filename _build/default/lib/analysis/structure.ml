let bae_diameter_bound ~alpha = (2. *. Float.sqrt alpha) +. 1.

let check_bae_diameter ~alpha g =
  match Paths.diameter g with
  | None -> true
  | Some d -> float_of_int d <= bae_diameter_bound ~alpha +. 1e-9

let bswe_subtree_size_bound ~alpha ~n ~layer =
  ignore n;
  if layer < 2 then Float.infinity else alpha /. float_of_int (layer - 1)

let rooted_at_median g =
  if not (Tree.is_tree g) then invalid_arg "Structure: not a tree";
  Tree.root_at g (Tree.median g)

let check_bswe_subtree_sizes ~alpha g =
  let t = rooted_at_median g in
  let sizes = Tree.subtree_sizes t in
  let ok = ref true in
  for u = 0 to Graph.n g - 1 do
    let layer = t.Tree.layer.(u) in
    if layer >= 2 then
      if
        float_of_int sizes.(u)
        > bswe_subtree_size_bound ~alpha ~n:(Graph.n g) ~layer +. 1e-9
      then ok := false
  done;
  !ok

let bswe_depth_bound ~alpha ~n ~subtree =
  if subtree <= 1 then 0.
  else
    (1. +. (2. *. alpha /. float_of_int n))
    *. (Float.log (float_of_int subtree) /. Float.log 2.)

let check_bswe_depths ~alpha g =
  let t = rooted_at_median g in
  let sizes = Tree.subtree_sizes t in
  let ok = ref true in
  for u = 0 to Graph.n g - 1 do
    if
      float_of_int (Tree.subtree_depth t u)
      > bswe_depth_bound ~alpha ~n:(Graph.n g) ~subtree:sizes.(u) +. 1e-9
    then ok := false
  done;
  !ok

let check_lemma_314 ~alpha g =
  let t = rooted_at_median g in
  let n = Graph.n g in
  let threshold =
    (2 * int_of_float (Float.ceil (4. *. alpha /. float_of_int n))) + 1
  in
  let ok = ref true in
  for u = 0 to n - 1 do
    let deep =
      List.filter (fun c -> Tree.subtree_depth t c > threshold) (Tree.children t u)
    in
    if List.length deep > 1 then ok := false
  done;
  !ok
