(** Rendering helpers on top of {!Dot}: draw a graph together with a
    move — e.g. a checker's instability witness — the way the paper's
    figures draw proposed changes (dashed = to be built, dotted = to be
    removed). *)

val move_overlay : ?labels:(int -> string) -> Graph.t -> Move.t -> string
(** [move_overlay g m] is DOT text for [g] with [m]'s participants filled
    red, added edges dashed red and removed edges dotted grey. *)

val case_to_dot : Counterexamples.case -> string
(** [case_to_dot c] renders a counterexample with its first instability
    witness overlaid (or plain if it has none). *)
