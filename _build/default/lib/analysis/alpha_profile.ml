type interval = { lo : float; hi : float }
type profile = { intervals : interval list; undecided : int }

type verdict3 = S | U | Unknown

let scan ?budget ?(tolerance = 1e-3) ~concept ~grid g =
  let classify alpha =
    match Concept.check ?budget ~alpha concept g with
    | Verdict.Stable -> S
    | Verdict.Unstable _ -> U
    | Verdict.Exhausted _ -> Unknown
  in
  let points = List.map (fun a -> (a, classify a)) grid in
  let undecided = List.length (List.filter (fun (_, v) -> v = Unknown) points) in
  (* Locate the flip between [lo] (verdict [lo_v]) and [hi] (the opposite
     decided verdict).  An [Unknown] mid-point stops the refinement
     conservatively. *)
  let rec bisect lo lo_v hi =
    if hi -. lo <= tolerance then if lo_v = S then lo else hi
    else
      let mid = (lo +. hi) /. 2. in
      match classify mid with
      | v when v = lo_v -> bisect mid lo_v hi
      | Unknown -> if lo_v = S then lo else hi
      | _ -> bisect lo lo_v mid
  in
  let rec walk prev open_lo acc = function
    | [] -> (
        match open_lo with
        | Some lo -> List.rev ({ lo; hi = Float.infinity } :: acc)
        | None -> List.rev acc)
    | (a, v) :: rest -> (
        match (open_lo, v) with
        | None, S ->
            let lo =
              match prev with Some (p, U) -> bisect p U a | Some _ | None -> a
            in
            walk (Some (a, v)) (Some lo) acc rest
        | Some _, S | None, (U | Unknown) -> walk (Some (a, v)) open_lo acc rest
        | Some lo, U ->
            let hi = match prev with Some (p, S) -> bisect p S a | _ -> a in
            walk (Some (a, v)) None ({ lo; hi } :: acc) rest
        | Some lo, Unknown ->
            let hi = match prev with Some (p, S) -> p | _ -> a in
            walk (Some (a, v)) None ({ lo; hi } :: acc) rest)
  in
  { intervals = walk None None [] points; undecided }

let covers p alpha =
  List.exists (fun { lo; hi } -> lo <= alpha && alpha <= hi) p.intervals

let pp ppf p =
  Format.fprintf ppf "{%a}%s"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf { lo; hi } ->
         Format.fprintf ppf "[%.3f, %s]" lo
           (if hi = Float.infinity then "inf" else Printf.sprintf "%.3f" hi)))
    p.intervals
    (if p.undecided > 0 then Printf.sprintf " (%d undecided)" p.undecided else "")
