type witness = Fund of (int * int) * (int * float) list | Defund of (int * int) * int list

let movers = function
  | Fund (_, shares) -> List.map fst shares
  | Defund (_, coalition) -> coalition

let apply s = function
  | Fund (e, shares) -> Cost_share.fund_edge s e shares
  | Defund (e, coalition) -> Cost_share.withdraw s e coalition

(* Distance gain of every agent when edge uv is added: positive entries
   only.  Gains route through the new edge, so g_w = old Σdist − new
   Σdist computed on the modified graph. *)
let fund_gains g u v =
  let g' = Graph.add_edge g u v in
  let n = Graph.n g in
  List.filter_map
    (fun w ->
      let before = (Paths.total_dist g w).Paths.sum
      and before_unreachable = (Paths.total_dist g w).Paths.unreachable in
      let after = Paths.total_dist g' w in
      if after.Paths.unreachable < before_unreachable then
        (* connectivity repair: lexicographically infinite gain *)
        Some (w, Float.infinity)
      else
        let gain = float_of_int (before - after.Paths.sum) in
        if gain > 0. then Some (w, gain) else None)
    (List.init n (fun w -> w))

let check s =
  let alpha = Cost_share.alpha s in
  let g = Cost_share.graph s in
  let exception Hit of witness in
  try
    (* funding moves on absent edges *)
    List.iter
      (fun (u, v) ->
        let gains = fund_gains g u v in
        let total = List.fold_left (fun acc (_, x) -> acc +. x) 0. gains in
        if total > alpha +. 1e-9 then begin
          (* distribute the price proportionally: each contributor pays
             share = gain * alpha / total < gain, a strict improvement *)
          let shares =
            if List.exists (fun (_, x) -> x = Float.infinity) gains then
              (* someone reconnects: she can pay everything *)
              List.map
                (fun (w, x) -> (w, if x = Float.infinity then alpha else 0.))
                gains
              |> List.filter (fun (_, x) -> x > 0.)
            else List.map (fun (w, x) -> (w, x *. alpha /. total)) gains
          in
          raise (Hit (Fund ((u, v), shares)))
        end)
      (Graph.non_edges g);
    (* defunding moves on existing edges *)
    List.iter
      (fun (u, v) ->
        let g' = Graph.remove_edge g u v in
        let coalition =
          List.filter_map
            (fun (w, paid) ->
              let before = Paths.total_dist g w and after = Paths.total_dist g' w in
              if after.Paths.unreachable > before.Paths.unreachable then None
              else
                let loss = float_of_int (after.Paths.sum - before.Paths.sum) in
                if paid > loss +. 1e-9 then Some (w, paid) else None)
            (Cost_share.contributors s (u, v))
        in
        let saved = List.fold_left (fun acc (_, x) -> acc +. x) 0. coalition in
        if
          coalition <> []
          && Cost_share.edge_total s (u, v) -. saved < alpha -. 1e-9
        then raise (Hit (Defund ((u, v), List.map fst coalition))))
      (Graph.edges g);
    Ok ()
  with Hit w -> Error w

let is_stable s = Result.is_ok (check s)
