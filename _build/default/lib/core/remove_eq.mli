(** Remove Equilibrium (RE): no agent improves by dropping one incident
    edge.  By Proposition A.2 this coincides with the Pure Nash Equilibrium
    of the bilateral game.  Exact, [O(m)] candidate moves. *)

val check : alpha:float -> Graph.t -> Verdict.t
(** [check ~alpha g] never answers [Exhausted]. *)

val is_stable : alpha:float -> Graph.t -> bool
