type t = Stable | Unstable of Move.t | Exhausted of string

let is_stable = function Stable -> true | Unstable _ | Exhausted _ -> false
let is_unstable = function Unstable _ -> true | Stable | Exhausted _ -> false
let witness = function Unstable m -> Some m | Stable | Exhausted _ -> None

let exactly_stable_exn who = function
  | Stable -> true
  | Unstable _ -> false
  | Exhausted why -> failwith (Printf.sprintf "%s: search exhausted (%s)" who why)

let pp ppf = function
  | Stable -> Format.fprintf ppf "stable"
  | Unstable m -> Format.fprintf ppf "unstable (%a)" Move.pp m
  | Exhausted why -> Format.fprintf ppf "exhausted (%s)" why

let to_string v = Format.asprintf "%a" pp v
