(** Pairwise Stability (Jackson–Wolinsky): RE ∧ BAE.  The solution concept
    Corbo and Parkes analysed the BNCG under. *)

val check : alpha:float -> Graph.t -> Verdict.t
val is_stable : alpha:float -> Graph.t -> bool
