lib/core/greedy_eq.ml: Pairwise Swap_eq Verdict
