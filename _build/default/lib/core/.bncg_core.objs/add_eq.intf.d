lib/core/add_eq.mli: Graph Verdict
