lib/core/move.ml: Delta Format Graph Int List
