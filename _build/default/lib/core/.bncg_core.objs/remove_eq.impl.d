lib/core/remove_eq.ml: Delta Graph List Move Verdict
