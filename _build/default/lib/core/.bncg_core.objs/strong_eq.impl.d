lib/core/strong_eq.ml: Array Cost Delta Graph Hashtbl Int List Move Option Paths Random Tree Verdict
