lib/core/swap_eq.ml: Array Cost Graph Lazy List Move Paths Verdict
