lib/core/pairwise.ml: Add_eq Remove_eq Verdict
