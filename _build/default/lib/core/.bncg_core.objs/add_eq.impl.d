lib/core/add_eq.ml: Array Graph Move Paths Verdict
