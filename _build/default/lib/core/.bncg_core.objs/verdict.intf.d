lib/core/verdict.mli: Format Move
