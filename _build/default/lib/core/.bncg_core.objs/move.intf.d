lib/core/move.mli: Format Graph
