lib/core/strong_eq.mli: Graph Move Random Verdict
