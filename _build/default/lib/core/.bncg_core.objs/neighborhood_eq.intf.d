lib/core/neighborhood_eq.mli: Graph Verdict
