lib/core/greedy_eq.mli: Graph Verdict
