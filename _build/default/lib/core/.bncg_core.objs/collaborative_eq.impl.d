lib/core/collaborative_eq.ml: Cost_share Float Graph List Paths Result
