lib/core/concept.ml: Add_eq Greedy_eq Neighborhood_eq Pairwise Printf Remove_eq Strong_eq Swap_eq Verdict
