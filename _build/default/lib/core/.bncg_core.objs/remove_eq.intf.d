lib/core/remove_eq.mli: Graph Verdict
