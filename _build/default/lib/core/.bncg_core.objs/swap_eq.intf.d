lib/core/swap_eq.mli: Graph Verdict
