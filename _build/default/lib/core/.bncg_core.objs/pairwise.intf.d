lib/core/pairwise.mli: Graph Verdict
