lib/core/verdict.ml: Format Move Printf
