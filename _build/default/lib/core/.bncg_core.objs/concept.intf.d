lib/core/concept.mli: Graph Verdict
