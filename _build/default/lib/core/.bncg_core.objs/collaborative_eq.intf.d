lib/core/collaborative_eq.mli: Cost_share
