lib/core/neighborhood_eq.ml: Array Delta Float Graph List Move Paths Printf Tree Verdict
