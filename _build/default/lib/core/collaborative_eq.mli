(** The Collaborative Equilibrium (CE) of Demaine, Hajiaghayi, Mahini and
    Zadimoghaddam, as described in the paper's Section 1.2: a funded state
    is in CE if no coalition can change the joint cost-shares of a
    {e single} edge so that every coalition member strictly benefits.
    Notably, non-incident agents may help fund an edge, which makes CE
    strictly stronger than Pairwise Stability.

    Per edge there are only two move shapes that can strictly benefit all
    movers, which makes exact checking polynomial:

    - {b fund} an absent edge [uv]: every agent [w] with distance gain
      [g_w > 0] can contribute a share below [g_w]; a mutually improving
      funding exists iff [Σ_w max(0, g_w) > α] (strictly);
    - {b defund} an existing edge: contributors whose saved share exceeds
      their distance loss withdraw; the move works iff their joint shares
      pull the remaining funding strictly below [α];
    - re-splitting the shares of a surviving edge is zero-sum in money and
      leaves distances unchanged, so it never strictly benefits everyone. *)

type witness =
  | Fund of (int * int) * (int * float) list
      (** the absent edge and a concrete improving funding *)
  | Defund of (int * int) * int list
      (** the edge and the withdrawing coalition *)

val check : Cost_share.t -> (unit, witness) result
(** [check s] is [Ok ()] iff [s] is in Collaborative Equilibrium.  Exact;
    [O(n² · (n + m))]. *)

val is_stable : Cost_share.t -> bool

val apply : Cost_share.t -> witness -> Cost_share.t
(** [apply s w] performs the witness move (for re-verification: every
    mover's {!Cost_share.agent_cost} must strictly drop). *)

val movers : witness -> int list
(** The agents who must strictly benefit. *)
