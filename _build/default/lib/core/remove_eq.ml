(* Dropping an edge saves the remover α and can only increase distances, so
   the move improves agent u iff the graph stays connected from u's view
   and the distance increase is strictly below α.  We evaluate both
   endpoints of every edge with a direct cost comparison. *)

let check ~alpha g =
  let exception Found of Move.t in
  try
    List.iter
      (fun (u, v) ->
        let g' = Graph.remove_edge g u v in
        let try_agent agent =
          if Delta.improves ~alpha ~before:g ~after:g' agent then
            raise (Found (Move.Remove { agent; target = (if agent = u then v else u) }))
        in
        try_agent u;
        try_agent v)
      (Graph.edges g);
    Verdict.Stable
  with Found m -> Verdict.Unstable m

let is_stable ~alpha g = Verdict.is_stable (check ~alpha g)
