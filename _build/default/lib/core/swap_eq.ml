(* The swap G − uv + uw must strictly improve both u (distance only; her
   degree is unchanged) and w (distance gain strictly above α, since she
   pays for the new edge).  Two sound prunes keep large instances fast:

   - w's swap gain is at most (dist(u,w) − 1)(n − 1): every shortened path
     enters through the new edge uw;
   - w's swap gain is at most her gain from *adding* uw without the
     removal, which has the closed form Σ_x max 0 (d(w,x) − 1 − d(u,x))
     on the original graph (an O(n) scan over cached BFS rows).

   Only candidates surviving both prunes pay for BFS evaluation.  When w is
   unreachable from u the prunes are skipped (the swap may repair
   connectivity) and the exact cost comparison decides. *)

let check ~alpha g =
  let size = Graph.n g in
  let exception Found of Move.t in
  let rows = Array.init size (fun u -> lazy (Paths.bfs g u)) in
  let before = Array.init size (fun u -> lazy (Cost.agent_cost ~alpha g u)) in
  let add_gain_bound du dw =
    let gain = ref 0 in
    for x = 0 to size - 1 do
      if du.(x) >= 0 && dw.(x) > du.(x) + 1 then gain := !gain + (dw.(x) - (du.(x) + 1))
    done;
    !gain
  in
  let improves g' agent =
    Cost.strictly_less (Cost.agent_cost ~alpha g' agent) (Lazy.force before.(agent))
  in
  try
    for u = 0 to size - 1 do
      if Graph.degree g u > 0 then begin
        let du = Lazy.force rows.(u) in
        (* Swap partners that could conceivably gain more than α —
           independent of which edge u drops, so computed once per u. *)
        let partners = ref [] in
        for w = size - 1 downto 0 do
          if w <> u && not (Graph.has_edge g u w) then begin
            let eligible =
              if du.(w) < 0 then true
              else if float_of_int ((du.(w) - 1) * (size - 1)) <= alpha then false
              else
                let dw = Lazy.force rows.(w) in
                float_of_int (add_gain_bound du dw) > alpha
            in
            if eligible then partners := w :: !partners
          end
        done;
        match !partners with
        | [] -> ()
        | partners ->
            Array.iter
              (fun v ->
                List.iter
                  (fun w ->
                    if w <> v then begin
                      let g' = Graph.add_edge (Graph.remove_edge g u v) u w in
                      if improves g' u && improves g' w then
                        raise (Found (Move.Bilateral_swap { u; drop = v; add = w }))
                    end)
                  partners)
              (Graph.neighbors g u)
      end
    done;
    Verdict.Stable
  with Found m -> Verdict.Unstable m

let is_stable ~alpha g = Verdict.is_stable (check ~alpha g)
