lib/game/unilateral.ml: Array Cost Graph Lazy List Option Paths Printf Strategy
