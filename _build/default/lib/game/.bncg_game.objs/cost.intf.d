lib/game/cost.mli: Graph Paths
