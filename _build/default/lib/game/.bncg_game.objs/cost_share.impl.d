lib/game/cost_share.ml: Cost Float Graph Hashtbl List Option Paths Printf
