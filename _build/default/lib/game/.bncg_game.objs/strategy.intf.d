lib/game/strategy.mli: Graph
