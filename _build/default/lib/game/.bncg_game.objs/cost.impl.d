lib/game/cost.ml: Float Graph Int Paths
