lib/game/cost_share.mli: Cost Graph
