lib/game/delta.mli: Graph
