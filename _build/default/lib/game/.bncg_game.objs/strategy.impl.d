lib/game/strategy.ml: Array Graph Hashtbl Int List Printf
