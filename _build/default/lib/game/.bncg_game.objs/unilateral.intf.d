lib/game/unilateral.mli: Cost Graph Strategy
