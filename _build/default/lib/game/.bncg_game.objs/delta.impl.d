lib/game/delta.ml: Array Cost Float Paths
