let cost ~alpha a u =
  let g = Strategy.graph a in
  Cost.agent_cost_of_parts ~alpha ~degree:(Strategy.strategy_size a u)
    ~total:(Paths.total_dist g u)

(* The graph without u's owned edges: everyone else's strategy is fixed. *)
let base_graph a u =
  List.fold_left
    (fun g v -> Graph.remove_edge g u v)
    (Strategy.graph a) (Strategy.strategy a u)

let best_response ~alpha a u =
  let g = Strategy.graph a in
  let size = Graph.n g in
  if size > 17 then invalid_arg "Unilateral.best_response: n > 17";
  let base = base_graph a u in
  (* All additions are incident to u, so a shortest path after buying the
     set S either avoids u's purchases (distance in [base]) or leaves u
     through one of them: dist(u,x) = min(d_base(u,x), min_{t∈S} 1 + d_base(t,x)). *)
  let rows = Array.init size (fun t -> Paths.bfs base t) in
  let targets = Array.of_list (List.filter (fun v -> v <> u) (List.init size (fun v -> v))) in
  let k = Array.length targets in
  let best_cost = ref None and best_strategy = ref [] in
  let dist = Array.make size 0 in
  for mask = 0 to (1 lsl k) - 1 do
    Array.blit rows.(u) 0 dist 0 size;
    let bought = ref 0 in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then begin
        incr bought;
        let t = targets.(b) in
        let row = rows.(t) in
        for x = 0 to size - 1 do
          if row.(x) >= 0 && (dist.(x) < 0 || dist.(x) > row.(x) + 1) then
            dist.(x) <- row.(x) + 1
        done
      end
    done;
    let total = Paths.total_dist_of dist in
    let c = Cost.agent_cost_of_parts ~alpha ~degree:!bought ~total in
    match !best_cost with
    | Some b when not (Cost.strictly_less c b) -> ()
    | _ ->
        best_cost := Some c;
        let s = ref [] in
        for b = k - 1 downto 0 do
          if mask land (1 lsl b) <> 0 then s := targets.(b) :: !s
        done;
        best_strategy := !s
  done;
  (Option.get !best_cost, !best_strategy)

let is_nash ~alpha a =
  let g = Strategy.graph a in
  let rec go u =
    if u >= Graph.n g then Ok ()
    else
      let current = cost ~alpha a u in
      let best, strategy = best_response ~alpha a u in
      if Cost.strictly_less best current then Error (u, strategy) else go (u + 1)
  in
  go 0

let is_add_eq ~alpha g =
  let size = Graph.n g in
  let exception Hit of int * int in
  let dist = Array.init size (fun u -> lazy (Paths.bfs g u)) in
  try
    for u = 0 to size - 1 do
      for v = 0 to size - 1 do
        if u <> v && not (Graph.has_edge g u v) then begin
          let du = Lazy.force dist.(u) in
          if du.(v) < 0 then raise (Hit (u, v))
          else begin
            let dv = Lazy.force dist.(v) in
            let gain = ref 0 in
            for x = 0 to size - 1 do
              if du.(x) >= 0 && dv.(x) >= 0 && du.(x) > dv.(x) + 1 then
                gain := !gain + (du.(x) - (dv.(x) + 1))
            done;
            if float_of_int !gain > alpha then raise (Hit (u, v))
          end
        end
      done
    done;
    Ok ()
  with Hit (u, v) -> Error (u, v)

let is_remove_eq ~alpha a =
  let g = Strategy.graph a in
  let exception Hit of int * int in
  try
    for u = 0 to Graph.n g - 1 do
      List.iter
        (fun v ->
          let g' = Graph.remove_edge g u v in
          let total = Paths.total_dist g' u in
          let c' =
            Cost.agent_cost_of_parts ~alpha ~degree:(Strategy.strategy_size a u - 1) ~total
          in
          if Cost.strictly_less c' (cost ~alpha a u) then raise (Hit (u, v)))
        (Strategy.strategy a u)
    done;
    Ok ()
  with Hit (u, v) -> Error (u, v)

let is_greedy_eq ~alpha a =
  let g = Strategy.graph a in
  let size = Graph.n g in
  let exception Hit of int * string in
  let unilateral_cost_of ~owned g' u =
    Cost.agent_cost_of_parts ~alpha ~degree:owned ~total:(Paths.total_dist g' u)
  in
  try
    (match is_remove_eq ~alpha a with
    | Error (u, v) -> raise (Hit (u, Printf.sprintf "remove %d-%d" u v))
    | Ok () -> ());
    for u = 0 to size - 1 do
      let owned = Strategy.strategy_size a u in
      let current = cost ~alpha a u in
      (* single addition *)
      for v = 0 to size - 1 do
        if u <> v && not (Graph.has_edge g u v) then begin
          let g' = Graph.add_edge g u v in
          if Cost.strictly_less (unilateral_cost_of ~owned:(owned + 1) g' u) current then
            raise (Hit (u, Printf.sprintf "add %d-%d" u v))
        end
      done;
      (* single owned-edge swap *)
      List.iter
        (fun v ->
          for w = 0 to size - 1 do
            if w <> u && w <> v && not (Graph.has_edge g u w) then begin
              let g' = Graph.add_edge (Graph.remove_edge g u v) u w in
              if Cost.strictly_less (unilateral_cost_of ~owned g' u) current then
                raise (Hit (u, Printf.sprintf "swap %d-%d for %d-%d" u v u w))
            end
          done)
        (Strategy.strategy a u)
    done;
    Ok ()
  with Hit (u, why) -> Error (u, why)
