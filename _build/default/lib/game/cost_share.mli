(** The cost-sharing variant of bilateral network creation (Albers et al.,
    discussed in the paper's Section 1.2): every agent declares a
    cost-share for each edge, and an edge forms when the joint shares
    reach [α].  Unlike the BNCG — where both endpoints pay [α] each — an
    edge costs [α] in total, and {e non-incident} agents may contribute.

    A state is a graph together with a funding scheme: who pays how much
    for each existing edge.  The Collaborative Equilibrium of Demaine et
    al. is checked on such states by {!Collaborative_eq}. *)

type t
(** A funded network state.  Immutable. *)

type funding = ((int * int) * (int * float) list) list
(** Per existing edge, the list of (agent, share) contributions. *)

val make : alpha:float -> Graph.t -> funding -> t
(** [make ~alpha g funding] validates and packs a state: every edge of [g]
    must be funded with non-negative shares summing to at least [α]
    (within tolerance), shares must name valid agents, and no absent edge
    may be funded.
    @raise Invalid_argument on violations. *)

val equal_split : alpha:float -> Graph.t -> t
(** [equal_split ~alpha g] funds every edge by its two endpoints at [α/2]
    each — the natural analogue of the BNCG's bilateral payment. *)

val alpha : t -> float
val graph : t -> Graph.t

val share : t -> int * int -> int -> float
(** [share s (u, v) w] is agent [w]'s contribution to edge [uv] ([0.] if
    none or if the edge is absent). *)

val edge_total : t -> int * int -> float
(** Total funding of an edge ([0.] when absent). *)

val contributors : t -> int * int -> (int * float) list
(** The (agent, share) list of an edge, heaviest first. *)

val agent_buy : t -> int -> float
(** [agent_buy s w] is the sum of [w]'s shares across all edges. *)

val agent_cost : t -> int -> Cost.agent
(** [agent_cost s w] combines {!agent_buy} with hop distances, with the
    same lexicographic disconnection handling as the BNCG. *)

val social_cost : t -> float
(** Finite social cost [Σ_w agent_cost w] (edges counted once via the
    shares).  [infinity] when disconnected. *)

val opt_cost : alpha:float -> int -> float
(** The social optimum under single-payment accounting: the star
    [(n−1)α + 2(n−1)²] for [α ≥ 2(?)] vs the clique
    [α n(n−1)/2 + n(n−1)]; the minimum of the two. *)

val rho : t -> float
(** Social cost ratio against {!opt_cost}. *)

val fund_edge : t -> int * int -> (int * float) list -> t
(** [fund_edge s (u, v) shares] adds the absent edge [uv] funded by
    [shares] (must sum to ≥ α).
    @raise Invalid_argument if the edge exists or funding is short. *)

val withdraw : t -> int * int -> int list -> t
(** [withdraw s (u, v) agents] zeroes the listed agents' shares of edge
    [uv]; if the remaining funding drops below [α] the edge disappears
    (and its remaining shares are refunded). *)
