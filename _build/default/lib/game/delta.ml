let improves ~alpha ~before ~after u =
  Cost.strictly_less (Cost.agent_cost ~alpha after u) (Cost.agent_cost ~alpha before u)

let cost_delta ~alpha ~before ~after u =
  let b = Cost.agent_cost ~alpha before u and a = Cost.agent_cost ~alpha after u in
  if a.Cost.unreachable <> b.Cost.unreachable then Float.nan
  else Cost.money a -. Cost.money b

let add_edge_gain ~dist_u ~dist_v =
  let gain = ref 0 in
  Array.iteri
    (fun x du ->
      let dv = dist_v.(x) in
      if du > dv + 1 then gain := !gain + (du - (dv + 1)))
    dist_u;
  !gain

let consent_upper_bound g v =
  let d = Paths.bfs g v in
  let acc = ref 1 in
  Array.iter (fun x -> if x > 2 then acc := !acc + (x - 2)) d;
  !acc
