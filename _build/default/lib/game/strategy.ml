type assignment = { g : Graph.t; owners : (int * int, int) Hashtbl.t }

let norm u v = if u <= v then (u, v) else (v, u)
let graph a = a.g

let make g owners =
  let table = Hashtbl.create (2 * Graph.num_edges g) in
  List.iter
    (fun ((u, v), w) ->
      if not (Graph.has_edge g u v) then
        invalid_arg (Printf.sprintf "Strategy.make: (%d,%d) is not an edge" u v);
      if w <> u && w <> v then
        invalid_arg (Printf.sprintf "Strategy.make: %d does not touch edge (%d,%d)" w u v);
      let key = norm u v in
      if Hashtbl.mem table key then
        invalid_arg (Printf.sprintf "Strategy.make: duplicate edge (%d,%d)" u v);
      Hashtbl.add table key w)
    owners;
  if Hashtbl.length table <> Graph.num_edges g then
    invalid_arg "Strategy.make: not every edge was assigned";
  { g; owners = table }

let owner a u v = Hashtbl.find a.owners (norm u v)

let strategy a u =
  Graph.fold_neighbors
    (fun acc v -> if owner a u v = u then v :: acc else acc)
    [] a.g u
  |> List.rev

let strategy_size a u = List.length (strategy a u)

let reassign a u v w =
  if w <> u && w <> v then invalid_arg "Strategy.reassign: non-incident owner";
  let owners = Hashtbl.copy a.owners in
  Hashtbl.replace owners (norm u v) w;
  { a with owners }

let canonical_assignment g =
  make g (List.map (fun (u, v) -> ((u, v), u)) (Graph.edges g))

let all_assignments g =
  let es = Array.of_list (Graph.edges g) in
  let m = Array.length es in
  if m > 20 then invalid_arg "Strategy.all_assignments: too many edges";
  let out = ref [] in
  for mask = 0 to (1 lsl m) - 1 do
    let owners =
      Array.to_list
        (Array.mapi
           (fun i (u, v) -> ((u, v), if mask land (1 lsl i) <> 0 then v else u))
           es)
    in
    out := make g owners :: !out
  done;
  !out

let bilateral_strategies g =
  Array.init (Graph.n g) (fun u -> Array.to_list (Graph.neighbors g u))

let mem x xs = List.exists (Int.equal x) xs

let bilateral_graph s =
  let n = Array.length s in
  let g = ref (Graph.create n) in
  for u = 0 to n - 1 do
    List.iter
      (fun v -> if v > u && mem u s.(v) then g := Graph.add_edge !g u v)
      s.(u)
  done;
  !g

let unilateral_graph s =
  let n = Array.length s in
  let g = ref (Graph.create n) in
  for u = 0 to n - 1 do
    List.iter (fun v -> if v <> u then g := Graph.add_edge !g u v) s.(u)
  done;
  !g
