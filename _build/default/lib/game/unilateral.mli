(** The unilateral Network Creation Game of Fabrikant et al., with explicit
    edge ownership — the comparison substrate for Section 2 of the paper
    (Propositions 2.1–2.3, including the refutation of the Corbo–Parkes
    conjecture).

    An agent's strategy is the set of edges she owns; her cost is
    [α · |S_u| + dist_G(u)], where the created graph contains every owned
    edge regardless of the other endpoint's strategy. *)

val cost : alpha:float -> Strategy.assignment -> int -> Cost.agent
(** [cost ~alpha a u] is agent [u]'s unilateral cost under assignment
    [a]. *)

val best_response : alpha:float -> Strategy.assignment -> int -> Cost.agent * int list
(** [best_response ~alpha a u] is the exact best response of [u]: the
    minimum cost over all strategies [S ⊆ V ∖ {u}] (keeping everyone
    else's edges), together with one optimal strategy.  Exponential in [n];
    @raise Invalid_argument if [n > 17]. *)

val is_nash : alpha:float -> Strategy.assignment -> (unit, int * int list) result
(** [is_nash ~alpha a] is [Ok ()] if no agent has a strictly improving
    strategy, else [Error (u, s)] with a better strategy [s] for [u].
    Uses {!best_response}, so the same size limit applies. *)

val is_add_eq : alpha:float -> Graph.t -> (unit, int * int) result
(** Unilateral Add Equilibrium: no agent strictly improves by buying one
    extra edge alone.  Ownership-independent. *)

val is_remove_eq : alpha:float -> Strategy.assignment -> (unit, int * int) result
(** No owner strictly improves by dropping one owned edge. *)

val is_greedy_eq : alpha:float -> Strategy.assignment -> (unit, int * string) result
(** Lenzner's Greedy Equilibrium: no agent improves by a single addition,
    single owned-edge removal, or single owned-edge swap.  The error
    carries the agent and a description of the move. *)
