let tolerance = 1e-9

type t = {
  alpha : float;
  graph : Graph.t;
  funding : (int * int, (int * float) list) Hashtbl.t;
}

type funding = ((int * int) * (int * float) list) list

let norm (u, v) = if u <= v then (u, v) else (v, u)

let make ~alpha g funding =
  if alpha <= 0. then invalid_arg "Cost_share.make: alpha must be positive";
  let table = Hashtbl.create (2 * Graph.num_edges g) in
  List.iter
    (fun ((u, v), shares) ->
      if not (Graph.has_edge g u v) then
        invalid_arg (Printf.sprintf "Cost_share.make: (%d,%d) is not an edge" u v);
      let key = norm (u, v) in
      if Hashtbl.mem table key then
        invalid_arg (Printf.sprintf "Cost_share.make: duplicate funding for (%d,%d)" u v);
      List.iter
        (fun (w, s) ->
          if w < 0 || w >= Graph.n g then invalid_arg "Cost_share.make: unknown agent";
          if s < -.tolerance then invalid_arg "Cost_share.make: negative share")
        shares;
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. shares in
      if total < alpha -. tolerance then
        invalid_arg (Printf.sprintf "Cost_share.make: edge (%d,%d) underfunded" u v);
      (* merge duplicate contributors, drop zero shares, heaviest first *)
      let merged = Hashtbl.create 4 in
      List.iter
        (fun (w, s) ->
          Hashtbl.replace merged w (s +. Option.value ~default:0. (Hashtbl.find_opt merged w)))
        shares;
      let shares =
        Hashtbl.fold (fun w s acc -> if s > tolerance then (w, s) :: acc else acc) merged []
        |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      in
      Hashtbl.add table key shares)
    funding;
  if Hashtbl.length table <> Graph.num_edges g then
    invalid_arg "Cost_share.make: not every edge is funded";
  { alpha; graph = g; funding = table }

let equal_split ~alpha g =
  make ~alpha g
    (List.map (fun (u, v) -> ((u, v), [ (u, alpha /. 2.); (v, alpha /. 2.) ])) (Graph.edges g))

let alpha s = s.alpha
let graph s = s.graph

let contributors s e = Option.value ~default:[] (Hashtbl.find_opt s.funding (norm e))

let share s e w =
  List.fold_left (fun acc (x, v) -> if x = w then acc +. v else acc) 0. (contributors s e)

let edge_total s e = List.fold_left (fun acc (_, v) -> acc +. v) 0. (contributors s e)

let agent_buy s w =
  Hashtbl.fold
    (fun _ shares acc ->
      acc +. List.fold_left (fun a (x, v) -> if x = w then a +. v else a) 0. shares)
    s.funding 0.

let agent_cost s w =
  let total = Paths.total_dist s.graph w in
  {
    Cost.unreachable = total.Paths.unreachable;
    buy = agent_buy s w;
    dist = total.Paths.sum;
  }

let social_cost s =
  let n = Graph.n s.graph in
  let acc = ref 0. in
  let disconnected = ref false in
  for w = 0 to n - 1 do
    let c = agent_cost s w in
    if c.Cost.unreachable > 0 then disconnected := true;
    acc := !acc +. Cost.money c
  done;
  if !disconnected then Float.infinity else !acc

let opt_cost ~alpha n =
  if n <= 1 then 0.
  else
    let nf = float_of_int n in
    let star = ((nf -. 1.) *. alpha) +. (2. *. (nf -. 1.) *. (nf -. 1.)) in
    let clique = (nf *. (nf -. 1.) /. 2. *. alpha) +. (nf *. (nf -. 1.)) in
    Float.min star clique

let rho s =
  let n = Graph.n s.graph in
  if n <= 1 then 1. else social_cost s /. opt_cost ~alpha:s.alpha n

let fund_edge s (u, v) shares =
  if Graph.has_edge s.graph u v then invalid_arg "Cost_share.fund_edge: edge exists";
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0. shares in
  if total < s.alpha -. tolerance then invalid_arg "Cost_share.fund_edge: underfunded";
  let funding = Hashtbl.copy s.funding in
  Hashtbl.add funding (norm (u, v))
    (List.sort (fun (_, a) (_, b) -> Float.compare b a) shares);
  { s with graph = Graph.add_edge s.graph u v; funding }

let withdraw s (u, v) agents =
  let key = norm (u, v) in
  let shares = contributors s (u, v) in
  let remaining = List.filter (fun (w, _) -> not (List.mem w agents)) shares in
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0. remaining in
  let funding = Hashtbl.copy s.funding in
  if total >= s.alpha -. tolerance then begin
    Hashtbl.replace funding key remaining;
    { s with funding }
  end
  else begin
    Hashtbl.remove funding key;
    { s with graph = Graph.remove_edge s.graph u v; funding }
  end
