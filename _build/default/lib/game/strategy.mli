(** Strategy vectors and edge ownership.

    In the bilateral game there is a bijection between (inefficiency-free)
    strategy vectors and created graphs (Section 1.1), so the bilateral
    checkers work on graphs directly.  The unilateral NCG, however, needs
    to know who owns each edge — Propositions 2.1–2.3 are statements about
    ownership — so this module provides edge assignments
    [f : E → V] and the induced strategies. *)

type assignment
(** A graph together with an owner for every edge. *)

val graph : assignment -> Graph.t
(** The underlying created graph. *)

val make : Graph.t -> ((int * int) * int) list -> assignment
(** [make g owners] assigns each listed edge to the given incident vertex.
    @raise Invalid_argument if an edge is missing from the list, listed
    twice, absent from [g], or assigned to a non-incident vertex. *)

val owner : assignment -> int -> int -> int
(** [owner a u v] is the owner of edge [uv].
    @raise Not_found if [uv] is not an edge. *)

val strategy : assignment -> int -> int list
(** [strategy a u] is [S_u]: the sorted list of targets of the edges owned
    by [u]. *)

val strategy_size : assignment -> int -> int
(** [strategy_size a u = List.length (strategy a u)]. *)

val reassign : assignment -> int -> int -> int -> assignment
(** [reassign a u v w] makes [w] (one of [u], [v]) the owner of edge
    [uv]. *)

val all_assignments : Graph.t -> assignment list
(** [all_assignments g] lists all [2^m] ownership choices.
    @raise Invalid_argument if [g] has more than 20 edges. *)

val canonical_assignment : Graph.t -> assignment
(** [canonical_assignment g] assigns every edge to its smaller endpoint. *)

val bilateral_strategies : Graph.t -> int list array
(** [bilateral_strategies g] is the (unique inefficiency-free) bilateral
    strategy vector creating [g]: [S_u] = neighbours of [u]. *)

val bilateral_graph : int list array -> Graph.t
(** [bilateral_graph s] is the graph created by strategy vector [s] under
    bilateral (mutual-consent) semantics: edge [uv] iff [u ∈ S_v] and
    [v ∈ S_u]. *)

val unilateral_graph : int list array -> Graph.t
(** [unilateral_graph s] is the graph created under unilateral semantics:
    edge [uv] iff [u ∈ S_v] or [v ∈ S_u]. *)
