(** Cost-change evaluation for candidate moves.

    The equilibrium checkers evaluate millions of candidate deviations; the
    helpers here keep that affordable.  [improves] is the general, always
    correct path (two BFS runs per affected agent).  [add_edge_gain] is the
    exact closed form for single-edge additions in connected graphs, which
    turns the BAE check into an APSP lookup.  [consent_upper_bound] is the
    pruning bound from Proposition A.5 in the paper. *)

val improves : alpha:float -> before:Graph.t -> after:Graph.t -> int -> bool
(** [improves ~alpha ~before ~after u] is [true] iff agent [u]'s cost is
    strictly lower in [after] than in [before]. *)

val cost_delta : alpha:float -> before:Graph.t -> after:Graph.t -> int -> float
(** [cost_delta ~alpha ~before ~after u] is the finite cost change
    (negative means improvement); [nan] if the unreachable count changes
    (compare with {!improves} instead). *)

val add_edge_gain : dist_u:int array -> dist_v:int array -> int
(** [add_edge_gain ~dist_u ~dist_v] is the exact distance-cost reduction
    for the agent with BFS vector [dist_u] when the edge towards the agent
    with vector [dist_v] is added:
    [Σ_x max 0 (dist_u.(x) - (1 + dist_v.(x)))].  Both vectors must belong
    to a connected graph (no [-1] entries). *)

val consent_upper_bound : Graph.t -> int -> int
(** [consent_upper_bound g v] is the paper's upper bound on the distance
    reduction agent [v] can obtain by accepting one new edge as part of a
    change centred at another agent:
    [Σ_w max 0 (dist(v,w) - 2) + 1].  If this is at most [α], agent [v]
    never consents to buying an extra edge in someone else's neighborhood
    change.  Requires [g] connected as seen from [v]. *)
