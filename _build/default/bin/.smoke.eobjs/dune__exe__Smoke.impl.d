bin/smoke.ml: Concept Gen List Printf Verdict
