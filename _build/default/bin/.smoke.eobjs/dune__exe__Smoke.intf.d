bin/smoke.mli:
