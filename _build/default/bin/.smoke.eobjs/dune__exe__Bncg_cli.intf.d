bin/bncg_cli.mli:
