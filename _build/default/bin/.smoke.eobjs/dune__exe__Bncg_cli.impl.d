bin/bncg_cli.ml: Alpha_profile Arg Cmd Cmdliner Concept Cost Counterexamples Dot Dynamics Encode Enumerate Format Gen Graph List Poa Printf Random Scanf String Term Verdict Welfare
