(* Quick end-to-end smoke of the libraries; the real suites live in test/. *)

let check name concept alpha g expect =
  let v = Concept.check ~alpha concept g in
  Printf.printf "%-34s %-6s alpha=%-6g -> %-40s %s\n" name (Concept.name concept) alpha
    (Verdict.to_string v)
    (if Verdict.is_stable v = expect then "OK" else "MISMATCH")

let () =
  let star = Gen.star 8 in
  List.iter (fun c -> check "star n=8" c 2.0 star true) Concept.all_fixed;
  let path4 = Gen.path 4 in
  check "path n=4 (Prop 3.16)" Concept.BSE 100.0 path4 true;
  check "clique n=5 alpha<1" Concept.BSE 0.5 (Gen.clique 5) true;
  check "path n=5 alpha<1 (not BSE)" Concept.BSE 0.5 (Gen.path 5) false;
  (* Lemma 2.4: C_n in BSE for n^2/4 - (n-1) < alpha < n(n-2)/4, n even. *)
  let n = 6 in
  let lo = (float_of_int (n * n) /. 4.) -. float_of_int (n - 1)
  and hi = float_of_int (n * (n - 2)) /. 4. in
  check "C6 inside Lemma 2.4 range" Concept.BSE ((lo +. hi) /. 2.) (Gen.cycle 6) true;
  check "C6 above Lemma 2.4 range" Concept.BSE (hi +. 3.) (Gen.cycle 6) false;
  Printf.printf "done\n"
